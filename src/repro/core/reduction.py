"""Reductions over chare arrays.

Charm++ applications synchronize loosely through *reductions*: every
element of an array calls ``contribute(value, op, target)`` exactly once
per reduction, partial results are combined up a spanning tree of PEs,
and the final value is delivered to the target (an entry method or, here,
optionally a driver callback).

The tree is **grid-aware**: within each cluster, hosting PEs form a
binomial-style tree rooted at the cluster's lowest hosting PE; cluster
roots then feed the global root.  A reduction therefore crosses the
wide-area link exactly ``num_clusters - 1`` times — the same optimization
Charm++'s grid-topology reduction implementations use, and the reason
reductions stay cheap in the paper's co-allocated runs.

Reductions are numbered per collection; element contributions to
reduction *k+1* may arrive while *k* is still combining (pipelined
steps), and the manager keeps the states separate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.ids import ChareID
from repro.errors import ReductionError
from repro.network.topology import GridTopology

# -- reducers ----------------------------------------------------------------


def _red_sum(acc: Any, value: Any) -> Any:
    return value if acc is None else acc + value


def _red_max(acc: Any, value: Any) -> Any:
    if acc is None:
        return value
    return np.maximum(acc, value) if isinstance(acc, np.ndarray) else max(acc, value)


def _red_min(acc: Any, value: Any) -> Any:
    if acc is None:
        return value
    return np.minimum(acc, value) if isinstance(acc, np.ndarray) else min(acc, value)


def _red_concat(acc: Any, value: Any) -> Any:
    out = [] if acc is None else acc
    out.extend(value)
    return out


def _red_nop(acc: Any, value: Any) -> Any:
    return None


REDUCERS: Dict[str, Callable[[Any, Any], Any]] = {
    "sum": _red_sum,
    "max": _red_max,
    "min": _red_min,
    "concat": _red_concat,
    "nop": _red_nop,
}


def combine(op: str, acc: Any, value: Any) -> Any:
    """Fold *value* into the running partial *acc* using reducer *op*."""
    try:
        fn = REDUCERS[op]
    except KeyError:
        raise ReductionError(f"unknown reducer {op!r}") from None
    return fn(acc, value)


def wrap_contribution(op: str, chare_id: ChareID, value: Any) -> Any:
    """Shape an element's raw value for the reducer.

    ``concat`` contributions become ``[(index, value)]`` so the final
    result identifies who contributed what, deterministically sortable.
    """
    if op == "concat":
        return [(chare_id.index, value)]
    return value


def finalize(op: str, acc: Any) -> Any:
    """Post-process the root's accumulated value before delivery."""
    if op == "concat" and acc is not None:
        return sorted(acc, key=lambda pair: pair[0])
    return acc


# -- spanning tree -------------------------------------------------------------


@dataclass(frozen=True)
class ReductionTree:
    """Parent/children structure over the PEs hosting a collection."""

    root: int
    parent: Dict[int, Optional[int]]
    children: Dict[int, Tuple[int, ...]]

    def expected_children(self, pe: int) -> int:
        return len(self.children.get(pe, ()))


def build_tree(hosting_pes: List[int], topology: GridTopology,
               arity: int = 4, *, node_aware: bool = False) -> ReductionTree:
    """Build the grid-aware reduction tree.

    Within each cluster the hosting PEs form an *arity*-ary tree rooted
    at the cluster's lowest hosting PE; every cluster root except the
    global root parents to the global root (one WAN hop each).

    With ``node_aware=True`` the intra-cluster shape prefers shmem
    edges: each node's hosting PEs first combine on the node's lowest
    hosting PE (shared memory), and only the node roots form the
    *arity*-ary LAN tree under the cluster root.  The WAN edge count is
    identical either way — exactly one per non-root cluster.
    """
    if not hosting_pes:
        raise ReductionError("cannot build a reduction tree over zero PEs")
    by_cluster: Dict[int, List[int]] = {}
    for pe in sorted(set(hosting_pes)):
        by_cluster.setdefault(topology.cluster_of(pe), []).append(pe)

    parent: Dict[int, Optional[int]] = {}
    children: Dict[int, List[int]] = {}
    cluster_roots: List[int] = []
    for _cluster, pes in sorted(by_cluster.items()):
        root = pes[0]
        cluster_roots.append(root)
        if node_aware:
            by_node: Dict[int, List[int]] = {}
            for pe in pes:
                by_node.setdefault(topology.node_of(pe), []).append(pe)
            node_roots: List[int] = []
            for _node, node_pes in sorted(by_node.items()):
                node_roots.append(node_pes[0])
                for pe in node_pes[1:]:
                    parent[pe] = node_pes[0]
                    children.setdefault(node_pes[0], []).append(pe)
            # Node roots form the LAN tree; node_roots[0] == cluster root
            # since PE ids are dense within nodes within clusters.
            for rank, pe in enumerate(node_roots):
                if rank == 0:
                    continue
                par = node_roots[(rank - 1) // arity]
                parent[pe] = par
                children.setdefault(par, []).append(pe)
            continue
        for rank, pe in enumerate(pes):
            if rank == 0:
                continue
            par = pes[(rank - 1) // arity]
            parent[pe] = par
            children.setdefault(par, []).append(pe)

    global_root = cluster_roots[0]
    parent[global_root] = None
    for croot in cluster_roots[1:]:
        parent[croot] = global_root
        children.setdefault(global_root, []).append(croot)

    return ReductionTree(
        root=global_root,
        parent=parent,
        children={pe: tuple(kids) for pe, kids in children.items()},
    )


# -- per-reduction state ----------------------------------------------------------


@dataclass
class _PeRedState:
    """One PE's progress in one reduction."""

    acc: Any = None
    local_contribs: int = 0
    child_partials: int = 0
    sent_up: bool = False


@dataclass
class _RedState:
    """Global bookkeeping for one (collection, red_num) reduction."""

    op: Optional[str] = None
    target: Any = None
    tree: Optional[ReductionTree] = None
    local_expected: Dict[int, int] = field(default_factory=dict)
    per_pe: Dict[int, _PeRedState] = field(default_factory=dict)
    done: bool = False


class ReductionManager:
    """Coordinates all in-flight reductions for a runtime.

    The runtime forwards three kinds of events here:

    * :meth:`contribute` — an element contributed locally;
    * :meth:`on_partial` — a combined partial arrived from a child PE;
    * :meth:`snapshot_for` — (internal) lazily freezes the hosting-PE
      tree and per-PE expected counts at the reduction's first event.

    Migration of a collection's elements while one of its reductions is
    open is rejected (:class:`~repro.errors.ReductionError`): the paper's
    applications only balance load at quiescent points, and allowing it
    would make the expected-count bookkeeping silently wrong.
    """

    def __init__(self, rts) -> None:
        self._rts = rts
        self._states: Dict[Tuple[int, int], _RedState] = {}
        self._next_red: Dict[ChareID, int] = {}

    # -- queries ---------------------------------------------------------

    def open_reductions(self, collection: int) -> List[int]:
        """Reduction numbers still combining for *collection*."""
        return sorted(red for (coll, red), st in self._states.items()
                      if coll == collection and not st.done)

    # -- events ----------------------------------------------------------

    def contribute(self, chare_id: ChareID, value: Any, op: str,
                   target: Any) -> None:
        red_num = self._next_red.get(chare_id, 0)
        self._next_red[chare_id] = red_num + 1
        state = self._state_for(chare_id.collection, red_num)
        self._check_consistent(state, op, target, chare_id.collection, red_num)

        pe = self._rts.pe_of(chare_id)
        ps = state.per_pe.setdefault(pe, _PeRedState())
        ps.acc = combine(op, ps.acc, wrap_contribution(op, chare_id, value))
        ps.local_contribs += 1
        self._maybe_send_up(chare_id.collection, red_num, state, pe)

    def on_partial(self, pe: int, msg) -> None:
        """Handle a :class:`~repro.core.records.ReductionMsg` arriving at *pe*."""
        state = self._state_for(msg.collection, msg.red_num)
        self._check_consistent(state, msg.op, msg.target,
                               msg.collection, msg.red_num)
        ps = state.per_pe.setdefault(pe, _PeRedState())
        ps.acc = combine(msg.op, ps.acc, msg.value)
        ps.child_partials += 1
        self._maybe_send_up(msg.collection, msg.red_num, state, pe)

    # -- internals ------------------------------------------------------------

    def _state_for(self, collection: int, red_num: int) -> _RedState:
        key = (collection, red_num)
        state = self._states.get(key)
        if state is None:
            state = _RedState()
            self._snapshot(collection, state)
            self._states[key] = state
        return state

    def _snapshot(self, collection: int, state: _RedState) -> None:
        mapping = self._rts.collection_mapping(collection)
        if not mapping:
            raise ReductionError(
                f"reduction over empty collection c{collection}")
        hosting: Dict[int, int] = {}
        for _idx, pe in mapping.items():
            hosting[pe] = hosting.get(pe, 0) + 1
        state.local_expected = hosting
        state.tree = build_tree(
            sorted(hosting), self._rts.topology,
            node_aware=(self._rts.config.collective_routing
                        == "hierarchical"))

    @staticmethod
    def _check_consistent(state: _RedState, op: str, target: Any,
                          collection: int, red_num: int) -> None:
        if state.op is None:
            state.op = op
            state.target = target
        elif state.op != op:
            raise ReductionError(
                f"reduction {red_num} on c{collection}: mixed reducers "
                f"{state.op!r} vs {op!r}")

    def _maybe_send_up(self, collection: int, red_num: int,
                       state: _RedState, pe: int) -> None:
        assert state.tree is not None
        ps = state.per_pe.setdefault(pe, _PeRedState())
        if ps.sent_up:
            raise ReductionError(
                f"PE {pe} received reduction traffic for c{collection}#"
                f"{red_num} after sending its partial (migration during "
                "an open reduction?)")
        expected_local = state.local_expected.get(pe, 0)
        expected_children = state.tree.expected_children(pe)
        if (ps.local_contribs < expected_local
                or ps.child_partials < expected_children):
            return
        ps.sent_up = True
        parent = state.tree.parent.get(pe)
        if parent is None:
            state.done = True
            self._rts._deliver_reduction_result(
                root_pe=pe, collection=collection, red_num=red_num,
                op=state.op, value=finalize(state.op, ps.acc),
                target=state.target)
        else:
            self._rts._send_reduction_partial(
                from_pe=pe, to_pe=parent, collection=collection,
                red_num=red_num, op=state.op, value=ps.acc,
                target=state.target)

    def assert_no_open_reduction(self, collection: int) -> None:
        """Guard used by migration: no reduction may be in flight."""
        open_reds = self.open_reductions(collection)
        if open_reds:
            raise ReductionError(
                f"collection c{collection} has open reductions "
                f"{open_reds}; migrate only at quiescent points")
