"""Wire-payload record types used inside the runtime.

Every :class:`~repro.network.message.Message` the runtime sends carries
one of these records as its payload; the scheduler dispatches on the
record type at execution time.  Applications never construct them
directly — proxies, reductions and migration do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from repro.core.ids import ChareID


class Invocation:
    """One entry-method invocation on one chare.

    One is allocated per point send, so this is a ``__slots__`` class
    with a straight-line ``__init__`` instead of a dataclass.
    """

    __slots__ = ("target", "entry", "args", "kwargs")

    def __init__(self, target: ChareID, entry: str, args: tuple = (),
                 kwargs: Optional[dict] = None) -> None:
        self.target = target
        self.entry = entry
        self.args = args
        self.kwargs = {} if kwargs is None else kwargs

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Invocation(target={self.target!r}, entry={self.entry!r}, "
                f"args={self.args!r}, kwargs={self.kwargs!r})")


@dataclass
class Bundle:
    """Several invocations delivered to one PE in a single message.

    Produced by broadcasts and section multicasts: the payload data is
    carried once per destination PE and fanned out locally, which is the
    optimization that keeps collective traffic off the WAN critical path.
    At delivery the bundle is expanded into individual queue entries.
    """

    invocations: List[Invocation]


@dataclass
class RelayMsg:
    """A multicast's payload in flight to a cluster- or node-root PE.

    Produced by the hierarchical collective-routing mode: instead of one
    bundle per destination PE (a broadcast to a 32-PE remote cluster
    crossing the WAN 32 times), the sender ships **one** relay per
    remote cluster.  The root PE re-fans locally — per-PE bundles over
    shmem/LAN, plus nested node-level relays where several destination
    PEs share a node — so the payload crosses the wide area exactly once
    per cluster.  The relay execution happens inside an entry-method
    context, so the re-fanned messages carry the relay's execution id as
    their ``cause`` and causal/critical-path analysis stays exact.
    """

    collection: int
    entry: str
    args: tuple
    kwargs: dict
    #: ``[(dst_pe, [indices...]), ...]`` — the targets this relay covers,
    #: grouped by hosting PE (all within one cluster, sorted by PE).
    groups: List[Tuple[int, List[Any]]]
    #: Explicit per-hop wire size override (``None`` = computed).
    size: Optional[int]
    priority: Optional[int]
    tag: str
    #: Relay depth of this hop in the multicast tree (1 = origin ->
    #: cluster root, 2 = cluster root -> node root).  Recorded in hop
    #: ledgers so wire-level attribution can separate relay tiers.
    hop: int = 1


@dataclass
class ReductionMsg:
    """A combined partial travelling up the reduction spanning tree."""

    collection: int
    red_num: int
    op: str
    value: Any
    #: PE that combined and sent this partial (a tree child).
    from_pe: int
    #: Where the final value goes (EntryRef / callable), carried along.
    target: Any


@dataclass
class MigrationMsg:
    """A chare's packed state in flight to its new home PE."""

    chare_id: ChareID
    chare: Any
    old_pe: int
    new_pe: int


@dataclass
class ForwardedMsg:
    """A message that reached a PE its target had already left.

    Wraps the original payload; the scheduler re-sends it to the target's
    current location, charging another network hop — the forwarding cost
    real migration incurs.
    """

    original_payload: Any
    original_size: int
    original_priority: int
    original_tag: str


@dataclass
class DriverCall:
    """A host-level callback scheduled to run on a PE at a virtual time.

    Produced when a reduction targets a plain Python callable (driver
    code): the call is wrapped as a zero-cost message to the root PE so
    it executes at the reduction's true completion time and shows up in
    traces like everything else.
    """

    fn: Any
    args: Tuple[Any, ...] = ()
