"""GridCommLB — the paper's §6 Grid-aware load balancer.

    "The preliminary version of this load balancer uses the strategy of
    simply distributing the chares that communicate across high-latency
    wide-area connections evenly among the processors within a cluster.
    In this scheme, no chares are migrated to remote clusters; rather
    they are simply migrated among the processors within the cluster in
    which they were originally placed."

The strategy therefore has two invariants the tests pin down:

1. **No cross-cluster migration, ever.**  A chare's destination cluster
   equals its source cluster.
2. **WAN-communicating chares spread evenly** over their home cluster's
   PEs (round-robin over the least-WAN-loaded PEs), so no single
   processor serializes all wide-area waits.

Non-WAN chares are then refine-balanced *within* each cluster to keep
total load even without disturbing the WAN spread.
"""

from __future__ import annotations

from typing import Dict

from repro.core.ids import ChareID
from repro.core.loadbalance.base import validate_plan
from repro.core.loadbalance.metrics import LBDatabase
from repro.network.topology import GridTopology


class GridCommLB:
    """Spread WAN-talking chares evenly within their home cluster."""

    def plan(self, db: LBDatabase, topology: GridTopology,
             mapping: Dict[ChareID, int]) -> Dict[ChareID, int]:
        wan_set = set(db.wan_talkers())
        plan: Dict[ChareID, int] = {}

        for cluster in range(topology.num_clusters):
            pes = list(topology.cluster_pes(cluster))
            if not pes:
                continue
            local = sorted(c for c, pe in mapping.items()
                           if topology.cluster_of(pe) == cluster)
            wan_chares = [c for c in local if c in wan_set]
            rest = [c for c in local if c not in wan_set]

            # Pass 1: deal WAN talkers round-robin over the cluster,
            # heaviest first so counts *and* WAN load even out.
            wan_chares.sort(key=lambda c: (-db.load_of(c), c))
            wan_count = [0] * len(pes)
            wan_load = [0.0] * len(pes)
            pe_load = [0.0] * len(pes)
            for chare in wan_chares:
                slot = min(range(len(pes)),
                           key=lambda i: (wan_count[i], wan_load[i], i))
                plan[chare] = pes[slot]
                wan_count[slot] += 1
                wan_load[slot] += db.load_of(chare)
                pe_load[slot] += db.load_of(chare)

            # Pass 2: place the remaining chares (heaviest first) on the
            # least-loaded PE of the same cluster — intra-cluster greedy,
            # which never crosses the WAN by construction.
            rest.sort(key=lambda c: (-db.load_of(c), c))
            for chare in rest:
                slot = min(range(len(pes)), key=lambda i: (pe_load[i], i))
                plan[chare] = pes[slot]
                pe_load[slot] += db.load_of(chare)

        validate_plan(plan, topology)
        # Invariant 1 is structural, but assert it anyway: it is the
        # paper's defining property and silent violation would invalidate
        # every Grid experiment built on this balancer.
        for chare, new_pe in plan.items():
            old_cluster = topology.cluster_of(mapping[chare])
            assert topology.cluster_of(new_pe) == old_cluster, \
                f"GridCommLB tried to move {chare} across clusters"
        return plan
