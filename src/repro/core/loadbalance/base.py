"""Load-balancing strategy interface and shared helpers.

A strategy is a pure function from measurements to a migration plan:
``plan(db, topology, mapping) -> {chare_id: new_pe}``.  The runtime
applies the plan (issuing migrations) and resets the database.  Keeping
strategies pure makes them trivially testable against synthetic
databases.
"""

from __future__ import annotations

from typing import Dict, List, Protocol

from repro.core.ids import ChareID
from repro.core.loadbalance.metrics import LBDatabase
from repro.errors import LoadBalanceError
from repro.network.topology import GridTopology


class LBStrategy(Protocol):
    """Strategy interface implemented by every load balancer."""

    def plan(self, db: LBDatabase, topology: GridTopology,
             mapping: Dict[ChareID, int]) -> Dict[ChareID, int]:
        """Return the chares to move and their destinations.

        Chares absent from the result stay where they are.  Returning a
        chare's current PE is allowed and means "no move".
        """
        ...


def pe_loads(db: LBDatabase, topology: GridTopology,
             mapping: Dict[ChareID, int]) -> List[float]:
    """Current per-PE load implied by the database and mapping."""
    loads = [0.0] * topology.num_pes
    for chare, pe in mapping.items():
        if not (0 <= pe < topology.num_pes):
            raise LoadBalanceError(f"{chare} mapped to invalid PE {pe}")
        loads[pe] += db.load_of(chare)
    return loads


def imbalance(loads: List[float]) -> float:
    """Max/mean load ratio; 1.0 is perfect balance, 0.0 if no load."""
    total = sum(loads)
    if total <= 0.0 or not loads:
        return 0.0
    mean = total / len(loads)
    return max(loads) / mean


def validate_plan(plan: Dict[ChareID, int], topology: GridTopology) -> None:
    """Raise if the plan names PEs outside the topology."""
    for chare, pe in plan.items():
        if not (0 <= pe < topology.num_pes):
            raise LoadBalanceError(
                f"plan moves {chare} to invalid PE {pe}")
