"""RefineLB: bounded incremental rebalancing.

Charm++'s ``RefineLB`` keeps the current mapping and only moves chares
off *overloaded* PEs onto *underloaded* ones until every PE is within a
tolerance of the mean.  It migrates far fewer objects than GreedyLB,
which matters when migration itself is expensive (e.g. across a Grid).
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.ids import ChareID
from repro.core.loadbalance.base import validate_plan
from repro.core.loadbalance.metrics import LBDatabase
from repro.errors import LoadBalanceError
from repro.network.topology import GridTopology


class RefineLB:
    """Move chares from overloaded PEs until within ``tolerance`` of mean.

    Parameters
    ----------
    tolerance:
        A PE counts as overloaded when its load exceeds
        ``tolerance * mean``; 1.05 reproduces Charm++'s default feel.
    """

    def __init__(self, tolerance: float = 1.05) -> None:
        if tolerance < 1.0:
            raise LoadBalanceError(
                f"tolerance must be >= 1.0, got {tolerance}")
        self.tolerance = tolerance

    def plan(self, db: LBDatabase, topology: GridTopology,
             mapping: Dict[ChareID, int]) -> Dict[ChareID, int]:
        num_pes = topology.num_pes
        loads = [0.0] * num_pes
        residents: List[List[ChareID]] = [[] for _ in range(num_pes)]
        for chare in sorted(mapping):
            pe = mapping[chare]
            loads[pe] += db.load_of(chare)
            residents[pe].append(chare)

        total = sum(loads)
        if total <= 0.0:
            return {}
        mean = total / num_pes
        threshold = self.tolerance * mean

        plan: Dict[ChareID, int] = {}
        # Deterministic sweep: heaviest PE first, move its lightest chares
        # (moving light objects first limits overshoot).
        for pe in sorted(range(num_pes), key=lambda p: (-loads[p], p)):
            if loads[pe] <= threshold:
                continue
            movable = sorted(residents[pe],
                             key=lambda c: (db.load_of(c), c))
            for chare in movable:
                if loads[pe] <= threshold:
                    break
                cload = db.load_of(chare)
                if cload <= 0.0:
                    continue
                # Least-loaded destination that can absorb it.
                dest = min(range(num_pes), key=lambda p: (loads[p], p))
                if dest == pe or loads[dest] + cload > threshold:
                    continue
                plan[chare] = dest
                loads[pe] -= cload
                loads[dest] += cload
        validate_plan(plan, topology)
        return plan
