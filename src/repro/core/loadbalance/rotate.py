"""RotateLB: a degenerate strategy for exercising migration machinery.

Moves every chare to ``(current_pe + 1) mod P``.  Useless for balance by
design — Charm++ ships the same strategy for testing that applications
survive arbitrary migrations — and our integration tests use it the same
way (numerics must be identical before/after rotation).
"""

from __future__ import annotations

from typing import Dict

from repro.core.ids import ChareID
from repro.core.loadbalance.metrics import LBDatabase
from repro.network.topology import GridTopology


class RotateLB:
    """Shift every chare one PE to the right (wrapping)."""

    def plan(self, db: LBDatabase, topology: GridTopology,
             mapping: Dict[ChareID, int]) -> Dict[ChareID, int]:
        p = topology.num_pes
        return {chare: (pe + 1) % p for chare, pe in sorted(mapping.items())}
