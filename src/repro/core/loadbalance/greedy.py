"""GreedyLB: heaviest chare to least-loaded processor.

The classic Charm++ ``GreedyLB``: ignore current placement entirely,
sort chares by measured load (descending), and repeatedly assign the
next-heaviest chare to the currently least-loaded PE.  Produces excellent
balance at the price of potentially migrating almost everything.
"""

from __future__ import annotations

import heapq
from typing import Dict

from repro.core.ids import ChareID
from repro.core.loadbalance.base import validate_plan
from repro.core.loadbalance.metrics import LBDatabase
from repro.network.topology import GridTopology


class GreedyLB:
    """Global greedy rebalancing (the Charm++ GreedyLB strategy)."""

    def plan(self, db: LBDatabase, topology: GridTopology,
             mapping: Dict[ChareID, int]) -> Dict[ChareID, int]:
        chares = sorted(mapping, key=lambda c: (-db.load_of(c), c))
        # Min-heap of (load, pe); ties broken by PE index for determinism.
        heap = [(0.0, pe) for pe in topology.pes()]
        heapq.heapify(heap)
        plan: Dict[ChareID, int] = {}
        for chare in chares:
            load, pe = heapq.heappop(heap)
            plan[chare] = pe
            heapq.heappush(heap, (load + db.load_of(chare), pe))
        validate_plan(plan, topology)
        return plan
