"""Measurement-based load balancing (paper §2.1 and §6).

The runtime records per-chare compute time and per-pair communication in
an :class:`~repro.core.loadbalance.metrics.LBDatabase`; strategies turn a
database + topology + current mapping into a migration plan.

Strategies provided:

* :class:`~repro.core.loadbalance.greedy.GreedyLB` — global greedy;
* :class:`~repro.core.loadbalance.refine.RefineLB` — bounded refinement;
* :class:`~repro.core.loadbalance.gridlb.GridCommLB` — the paper's §6
  Grid balancer (never crosses clusters, spreads WAN talkers);
* :class:`~repro.core.loadbalance.rotate.RotateLB` — migration shakeout.
"""

from repro.core.loadbalance.base import (
    LBStrategy,
    imbalance,
    pe_loads,
    validate_plan,
)
from repro.core.loadbalance.greedy import GreedyLB
from repro.core.loadbalance.gridlb import GridCommLB
from repro.core.loadbalance.metrics import CommRecord, LBDatabase
from repro.core.loadbalance.refine import RefineLB
from repro.core.loadbalance.rotate import RotateLB

__all__ = [
    "LBStrategy",
    "LBDatabase",
    "CommRecord",
    "GreedyLB",
    "RefineLB",
    "GridCommLB",
    "RotateLB",
    "pe_loads",
    "imbalance",
    "validate_plan",
]
