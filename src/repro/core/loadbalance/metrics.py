"""Measurement database for load balancing.

Charm++'s measurement-based load balancers observe, between balancing
steps, how much compute time each chare consumed and how much it talked
to whom.  The scheduler and send path feed the same observations into
:class:`LBDatabase`; strategies read it through the accessors below.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.ids import ChareID


@dataclass
class CommRecord:
    """Accumulated traffic between one ordered chare pair."""

    messages: int = 0
    bytes: int = 0
    #: Messages that crossed the wide-area link (at send-time mapping).
    wan_messages: int = 0


@dataclass
class LBDatabase:
    """Per-chare load and per-pair communication since the last reset."""

    chare_load: Dict[ChareID, float] = field(default_factory=dict)
    comm: Dict[Tuple[ChareID, ChareID], CommRecord] = field(
        default_factory=dict)

    # -- recording (called by the runtime) ---------------------------------

    def record_execution(self, chare: ChareID, cost: float) -> None:
        self.chare_load[chare] = self.chare_load.get(chare, 0.0) + cost

    def record_send(self, src: Optional[ChareID], dst: ChareID,
                    size_bytes: int, crossed_wan: bool) -> None:
        if src is None:
            return  # driver-originated traffic is not a chare's doing
        rec = self.comm.setdefault((src, dst), CommRecord())
        rec.messages += 1
        rec.bytes += size_bytes
        if crossed_wan:
            rec.wan_messages += 1

    def reset(self) -> None:
        """Forget everything (called after each balancing step)."""
        self.chare_load.clear()
        self.comm.clear()

    # -- queries (used by strategies) ----------------------------------------

    def load_of(self, chare: ChareID) -> float:
        return self.chare_load.get(chare, 0.0)

    def known_chares(self) -> List[ChareID]:
        """Chares with any recorded activity, deterministically ordered."""
        seen = set(self.chare_load)
        for (src, dst) in self.comm:
            seen.add(src)
            seen.add(dst)
        return sorted(seen)

    def partners_of(self, chare: ChareID) -> List[Tuple[ChareID, CommRecord]]:
        """Every chare *chare* exchanged messages with, and the traffic."""
        out: Dict[ChareID, CommRecord] = {}
        for (src, dst), rec in self.comm.items():
            other = None
            if src == chare:
                other = dst
            elif dst == chare:
                other = src
            if other is None:
                continue
            agg = out.setdefault(other, CommRecord())
            agg.messages += rec.messages
            agg.bytes += rec.bytes
            agg.wan_messages += rec.wan_messages
        return sorted(out.items(), key=lambda kv: kv[0])

    def wan_talkers(self) -> List[ChareID]:
        """Chares that sent or received wide-area traffic.

        These are the objects the paper's §6 Grid load balancer singles
        out for even distribution within their home cluster.
        """
        talkers = set()
        for (src, dst), rec in self.comm.items():
            if rec.wan_messages > 0:
                talkers.add(src)
                talkers.add(dst)
        return sorted(talkers)

    def total_load(self) -> float:
        return sum(self.chare_load.values())
