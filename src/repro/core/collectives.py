"""Broadcasts and section multicasts.

Paper §2.1: "Messages may be sent to individual chares within a chare
array or to the entire chare array simultaneously", and LeanMD (§4)
relies on each cell *multicasting* its coordinates to the 26 cell-pairs
that depend on it.

Both collectives are implemented with **per-PE bundling**: the payload is
sent once to each destination PE (as a :class:`~repro.core.records.Bundle`)
and fanned out locally.  This matters for the Grid setting — a cell with
pair objects on a remote cluster sends its coordinates across the WAN
once per remote PE, not once per remote object.

With ``RuntimeConfig.collective_routing = "hierarchical"`` the downward
direction becomes topology-aware as well (the MPICH-G2 multi-level
scheme): destination PEs are grouped by cluster, each remote cluster
receives **one** :class:`~repro.core.records.RelayMsg` addressed to its
lowest destination PE, and that cluster root re-fans locally — per-PE
bundles over loopback/shmem/LAN, plus nested node-level relays where
several destination PEs share a physical node.  The payload then crosses
the wide area exactly once per remote cluster instead of once per remote
PE.  Per-element delivery semantics, priorities and tags are preserved
verbatim on every hop, and because the relay runs inside an ordinary
entry-method execution, re-fanned messages carry the relay execution's
id as their ``cause`` — the causal chain through the relay hop stays
exact for critical-path attribution.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.core.ids import ChareID, Index
from repro.core.method import invocation_bytes
from repro.core.records import Bundle, Invocation, RelayMsg

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.rts import Runtime

#: Extra bytes per additional local fan-out target inside one bundle
#: (the per-element header; the payload itself is carried once).
PER_TARGET_BYTES = 16


def bundle_size(args: tuple, kwargs: dict, num_targets: int) -> int:
    """Wire size of a bundle carrying *args*/*kwargs* to *num_targets*."""
    return (invocation_bytes(args, kwargs)
            + max(num_targets - 1, 0) * PER_TARGET_BYTES)


def group_targets_by_pe(rts: "Runtime", collection: int,
                        indices: Sequence[Index]) -> Dict[int, List[Index]]:
    """Group element indices by their current host PE (sorted, stable)."""
    groups: Dict[int, List[Index]] = {}
    for idx in indices:
        pe = rts.pe_of(ChareID(collection, idx))
        groups.setdefault(pe, []).append(idx)
    for lst in groups.values():
        lst.sort()
    return groups


def _dispatch_group(rts: "Runtime", collection: int, entry: str,
                    pe: int, targets: Sequence[Index], args: tuple,
                    kwargs: dict, size: Optional[int],
                    priority: Optional[int], tag: str,
                    relay_hop: int = 0) -> None:
    """Send one per-PE bundle covering *targets* on *pe*."""
    invocations = [Invocation(ChareID(collection, idx), entry,
                              args, dict(kwargs))
                   for idx in targets]
    wire = size if size is not None else bundle_size(
        args, kwargs, len(targets))
    rts._dispatch_payload(
        dst_pe=pe, payload=Bundle(invocations), size=wire,
        priority=priority, tag=tag, entry_hint=entry,
        collection_hint=collection, relay_hop=relay_hop)


def send_bundled(rts: "Runtime", collection: int, entry: str,
                 indices: Sequence[Index], args: tuple, kwargs: dict,
                 size: Optional[int], priority: Optional[int],
                 tag: Optional[str]) -> None:
    """Send bundles covering *indices*: one per destination PE (flat
    routing) or one per remote cluster plus local bundles (hierarchical
    routing, see the module docstring)."""
    groups = group_targets_by_pe(rts, collection, indices)
    if rts.config.collective_routing == "hierarchical" and len(groups) > 1:
        _send_hierarchical(rts, collection, entry, groups, args, kwargs,
                           size, priority, tag or entry)
        return
    for pe in sorted(groups):
        _dispatch_group(rts, collection, entry, pe, groups[pe], args,
                        kwargs, size, priority, tag or entry)


def _send_hierarchical(rts: "Runtime", collection: int, entry: str,
                       groups: Dict[int, List[Index]], args: tuple,
                       kwargs: dict, size: Optional[int],
                       priority: Optional[int], tag: str) -> None:
    """Topology-aware multicast: one relay per remote cluster.

    Destination PEs in the originating PE's own cluster get direct
    per-PE bundles (those ride loopback/shmem/LAN and were never the
    problem); each remote cluster with more than one destination PE gets
    a single :class:`RelayMsg` to its lowest destination PE, which
    re-fans via :func:`process_relay`.  A remote cluster with exactly
    one destination PE needs no relay — the direct bundle already
    crosses the WAN exactly once.
    """
    topo = rts.topology
    origin_cluster = topo.cluster_of(rts._originating_pe())
    by_cluster: Dict[int, List[int]] = {}
    for pe in sorted(groups):
        by_cluster.setdefault(topo.cluster_of(pe), []).append(pe)
    for cluster in sorted(by_cluster):
        pes = by_cluster[cluster]
        if cluster == origin_cluster or len(pes) == 1:
            for pe in pes:
                _dispatch_group(rts, collection, entry, pe, groups[pe],
                                args, kwargs, size, priority, tag)
            continue
        cluster_groups = [(pe, groups[pe]) for pe in pes]
        total = sum(len(idxs) for _pe, idxs in cluster_groups)
        wire = size if size is not None else bundle_size(args, kwargs,
                                                         total)
        rts._dispatch_payload(
            dst_pe=pes[0],
            payload=RelayMsg(collection=collection, entry=entry,
                             args=args, kwargs=kwargs,
                             groups=cluster_groups, size=size,
                             priority=priority, tag=tag, hop=1),
            size=wire, priority=priority, tag=tag, entry_hint=entry,
            collection_hint=collection, relay_hop=1)


def process_relay(rts: "Runtime", pe: int, relay: RelayMsg) -> None:
    """Re-fan an arrived relay from its root PE (runs inside an
    entry-method execution, so re-sends inherit the relay's cause id).

    Target PEs on the root's own node get direct bundles (loopback for
    the root itself, shmem for node siblings); each other node with more
    than one destination PE gets a nested node-level relay to its lowest
    destination PE (whose re-fan is then all same-node); single-PE nodes
    get their bundle directly over the LAN.
    """
    topo = rts.topology
    my_node = topo.node_of(pe)
    by_node: Dict[int, List[Tuple[int, List[Index]]]] = {}
    for dst_pe, idxs in relay.groups:
        by_node.setdefault(topo.node_of(dst_pe), []).append((dst_pe, idxs))
    for node in sorted(by_node):
        entries = by_node[node]
        if node == my_node or len(entries) == 1:
            for dst_pe, idxs in entries:
                _dispatch_group(rts, relay.collection, relay.entry,
                                dst_pe, idxs, relay.args, relay.kwargs,
                                relay.size, relay.priority, relay.tag,
                                relay_hop=relay.hop + 1)
            continue
        total = sum(len(idxs) for _pe, idxs in entries)
        wire = relay.size if relay.size is not None else bundle_size(
            relay.args, relay.kwargs, total)
        rts._dispatch_payload(
            dst_pe=entries[0][0],
            payload=RelayMsg(collection=relay.collection,
                             entry=relay.entry, args=relay.args,
                             kwargs=relay.kwargs, groups=entries,
                             size=relay.size, priority=relay.priority,
                             tag=relay.tag, hop=relay.hop + 1),
            size=wire, priority=relay.priority, tag=relay.tag,
            entry_hint=relay.entry, collection_hint=relay.collection,
            relay_hop=relay.hop + 1)


class SectionEntry:
    """Bound entry method of a section proxy; calling it multicasts."""

    __slots__ = ("_rts", "_collection", "_indices", "_entry")

    def __init__(self, rts: "Runtime", collection: int,
                 indices: List[Index], entry: str) -> None:
        self._rts = rts
        self._collection = collection
        self._indices = indices
        self._entry = entry

    def __call__(self, *args: Any, _size: Optional[int] = None,
                 _priority: Optional[int] = None, _tag: Optional[str] = None,
                 **kwargs: Any) -> None:
        send_bundled(self._rts, self._collection, self._entry,
                     self._indices, args, kwargs, _size, _priority, _tag)


class SectionProxy:
    """A fixed subset of a chare array, multicast-addressable.

    Created via :meth:`repro.core.proxy.ArrayProxy.section`.  The member
    list is frozen at creation; PE destinations are re-resolved at every
    multicast, so sections stay correct across migrations.
    """

    __slots__ = ("_rts", "_collection", "_indices")

    def __init__(self, rts: "Runtime", collection: int,
                 indices: List[Index]) -> None:
        self._rts = rts
        self._collection = collection
        self._indices = list(indices)

    @property
    def indices(self) -> List[Index]:
        return list(self._indices)

    def __len__(self) -> int:
        return len(self._indices)

    def __getattr__(self, name: str) -> SectionEntry:
        if name.startswith("_"):
            raise AttributeError(name)
        return SectionEntry(self._rts, self._collection, self._indices, name)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<section of c{self._collection}, "
                f"{len(self._indices)} elements>")
