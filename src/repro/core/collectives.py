"""Broadcasts and section multicasts.

Paper §2.1: "Messages may be sent to individual chares within a chare
array or to the entire chare array simultaneously", and LeanMD (§4)
relies on each cell *multicasting* its coordinates to the 26 cell-pairs
that depend on it.

Both collectives are implemented with **per-PE bundling**: the payload is
sent once to each destination PE (as a :class:`~repro.core.records.Bundle`)
and fanned out locally.  This matters for the Grid setting — a cell with
pair objects on a remote cluster sends its coordinates across the WAN
once per remote PE, not once per remote object.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, TYPE_CHECKING

from repro.core.ids import ChareID, Index
from repro.core.method import invocation_bytes
from repro.core.records import Bundle, Invocation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.rts import Runtime

#: Extra bytes per additional local fan-out target inside one bundle
#: (the per-element header; the payload itself is carried once).
PER_TARGET_BYTES = 16


def bundle_size(args: tuple, kwargs: dict, num_targets: int) -> int:
    """Wire size of a bundle carrying *args*/*kwargs* to *num_targets*."""
    return (invocation_bytes(args, kwargs)
            + max(num_targets - 1, 0) * PER_TARGET_BYTES)


def group_targets_by_pe(rts: "Runtime", collection: int,
                        indices: Sequence[Index]) -> Dict[int, List[Index]]:
    """Group element indices by their current host PE (sorted, stable)."""
    groups: Dict[int, List[Index]] = {}
    for idx in indices:
        pe = rts.pe_of(ChareID(collection, idx))
        groups.setdefault(pe, []).append(idx)
    for lst in groups.values():
        lst.sort()
    return groups


def send_bundled(rts: "Runtime", collection: int, entry: str,
                 indices: Sequence[Index], args: tuple, kwargs: dict,
                 size: Optional[int], priority: Optional[int],
                 tag: Optional[str]) -> None:
    """Send one bundle per destination PE covering *indices*."""
    groups = group_targets_by_pe(rts, collection, indices)
    for pe in sorted(groups):
        targets = groups[pe]
        invocations = [Invocation(ChareID(collection, idx), entry,
                                  args, dict(kwargs))
                       for idx in targets]
        wire = size if size is not None else bundle_size(
            args, kwargs, len(targets))
        rts._dispatch_payload(
            dst_pe=pe, payload=Bundle(invocations), size=wire,
            priority=priority, tag=tag or entry, entry_hint=entry,
            collection_hint=collection)


class SectionEntry:
    """Bound entry method of a section proxy; calling it multicasts."""

    __slots__ = ("_rts", "_collection", "_indices", "_entry")

    def __init__(self, rts: "Runtime", collection: int,
                 indices: List[Index], entry: str) -> None:
        self._rts = rts
        self._collection = collection
        self._indices = indices
        self._entry = entry

    def __call__(self, *args: Any, _size: Optional[int] = None,
                 _priority: Optional[int] = None, _tag: Optional[str] = None,
                 **kwargs: Any) -> None:
        send_bundled(self._rts, self._collection, self._entry,
                     self._indices, args, kwargs, _size, _priority, _tag)


class SectionProxy:
    """A fixed subset of a chare array, multicast-addressable.

    Created via :meth:`repro.core.proxy.ArrayProxy.section`.  The member
    list is frozen at creation; PE destinations are re-resolved at every
    multicast, so sections stay correct across migrations.
    """

    __slots__ = ("_rts", "_collection", "_indices")

    def __init__(self, rts: "Runtime", collection: int,
                 indices: List[Index]) -> None:
        self._rts = rts
        self._collection = collection
        self._indices = list(indices)

    @property
    def indices(self) -> List[Index]:
        return list(self._indices)

    def __len__(self) -> int:
        return len(self._indices)

    def __getattr__(self, name: str) -> SectionEntry:
        if name.startswith("_"):
            raise AttributeError(name)
        return SectionEntry(self._rts, self._collection, self._indices, name)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<section of c{self._collection}, "
                f"{len(self._indices)} elements>")
