"""Checkpoint / restore of a runtime's application state.

Paper §2.1: the chare migration capability "is leveraged to support
other capabilities such as automatic checkpointing [and] fault
tolerance".  The same packing machinery that moves one chare between
PEs can serialize *all* of them: a checkpoint is the set of packed
chares plus their location map, taken at a quiescent point.

Semantics mirror Charm++'s synchronous checkpoint:

* :func:`take_checkpoint` requires quiescence (no queued messages, no
  pending events) — checkpointing mid-flight messages is exactly the
  hard part Charm++ also sidesteps at this level;
* :func:`restore_checkpoint` re-creates every collection, element and
  placement inside a *fresh* runtime (typically a new environment of
  identical topology, simulating a restart after failure);
* determinism guarantee (pinned by tests): continue-after-checkpoint
  and restore-then-continue produce identical application state.

Chare state is deep-copied via :mod:`pickle`, which doubles as an
honest byte count for the checkpoint-size accounting.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.ids import ChareID, Index
from repro.errors import RuntimeSystemError


@dataclass(frozen=True)
class CollectionImage:
    """Serialized form of one chare collection."""

    cid: int
    cls: type
    #: index -> (pe, pickled chare state)
    elements: Dict[Index, Tuple[int, bytes]]


@dataclass(frozen=True)
class Checkpoint:
    """A full application snapshot."""

    num_pes: int
    collections: Tuple[CollectionImage, ...]
    taken_at: float

    @property
    def total_bytes(self) -> int:
        """Serialized size of all chare state (the wire/disk cost)."""
        return sum(len(blob) for image in self.collections
                   for (_pe, blob) in image.elements.values())

    @property
    def num_chares(self) -> int:
        return sum(len(image.elements) for image in self.collections)


def assert_quiescent(rts) -> None:
    """Raise unless the runtime has no in-flight work anywhere."""
    if rts.engine.pending != 0 or not rts.scheduler.all_queues_empty():
        raise RuntimeSystemError(
            "checkpoint requires quiescence: "
            f"{rts.engine.pending} pending events, busy/queued PEs "
            f"{[ps.pe for ps in rts.scheduler.pes if ps.busy or ps.queue]}")


def _strip_runtime(chare) -> bytes:
    """Pickle a chare without its runtime binding (rebound on restore)."""
    rts, cid = chare._rts, chare._id
    chare._rts, chare._id = None, None
    try:
        return pickle.dumps(chare)
    finally:
        chare._rts, chare._id = rts, cid


def take_checkpoint(rts) -> Checkpoint:
    """Snapshot every chare of *rts* (must be quiescent)."""
    assert_quiescent(rts)
    images: List[CollectionImage] = []
    for cid in sorted(rts._collections):
        coll = rts._collections[cid]
        elements: Dict[Index, Tuple[int, bytes]] = {}
        for idx in sorted(coll.mapping):
            obj = coll.objects.get(idx)
            if obj is None:
                raise RuntimeSystemError(
                    f"chare c{cid}[{idx}] is mid-migration; "
                    "checkpoint at a quiescent point")
            elements[idx] = (coll.mapping[idx], _strip_runtime(obj))
        images.append(CollectionImage(cid=cid, cls=coll.cls,
                                      elements=elements))
    return Checkpoint(num_pes=rts.num_pes, collections=tuple(images),
                      taken_at=rts.now)


def restore_checkpoint(rts, checkpoint: Checkpoint) -> None:
    """Recreate the checkpointed application inside a fresh runtime.

    *rts* must be empty (no collections yet) and span at least as many
    PEs as the checkpoint used (shrink-restore would need remapping,
    which Charm++ supports but the paper does not exercise).
    """
    if rts._collections:
        raise RuntimeSystemError(
            "restore target runtime already hosts collections")
    if rts.num_pes < checkpoint.num_pes:
        raise RuntimeSystemError(
            f"checkpoint used {checkpoint.num_pes} PEs; target has "
            f"only {rts.num_pes}")
    for image in checkpoint.collections:
        coll = rts._new_collection(image.cls)
        if coll.cid != image.cid:
            raise RuntimeSystemError(
                f"collection id drift: expected c{image.cid}, got "
                f"c{coll.cid} (restore into a *fresh* runtime)")
        for idx, (pe, blob) in sorted(image.elements.items()):
            obj = pickle.loads(blob)
            rts._register(coll, ChareID(coll.cid, idx), obj, pe)
