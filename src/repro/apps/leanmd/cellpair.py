"""The CellPair chare: computes one pair of cells' interactions.

Paper §4: "Each cell pair calculates forces on the two sets of atoms it
receives, and sends them back to the two cells ... the computations in
each cell pair depend on messages from at most two other objects,
possibly on two different processors."

A neighbour pair waits for both cells' coordinates for the step; a
self-pair needs only its own cell's.  Pairs whose two cells live on
different clusters are the paper's "subset B" — their inputs cross the
WAN, and their waits are what the scheduler overlaps with subset-A work.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from repro.apps.leanmd.cell import LeanMDRunConfig
from repro.apps.leanmd.forces import interaction_count, pair_forces, self_forces
from repro.apps.leanmd.geometry import CellIndex, PairIndex, split_pair
from repro.apps.leanmd.system import MdParams
from repro.core.chare import Chare
from repro.core.method import entry
from repro.errors import ConfigurationError


class CellPair(Chare):
    """One cell-pair interaction object."""

    def __init__(self, pidx: PairIndex, params: MdParams,
                 config: LeanMDRunConfig, cells_proxy,
                 box: np.ndarray,
                 charges_a: Optional[np.ndarray],
                 charges_b: Optional[np.ndarray]) -> None:
        super().__init__()
        self.pidx = pidx
        self.cell_a, self.cell_b = split_pair(pidx)
        self.is_self = self.cell_a == self.cell_b
        self.params = params
        self.config = config
        self.cells_proxy = cells_proxy
        self.box = box
        self.charges_a = charges_a
        self.charges_b = charges_b
        self._coords_buf: Dict[int, Dict[CellIndex, Any]] = {}

    @property
    def expected_inputs(self) -> int:
        return 1 if self.is_self else 2

    # -- entry methods ----------------------------------------------------------

    @entry
    def coords(self, step: int, cell_idx: tuple, positions: Any) -> None:
        """A member cell published its coordinates for *step*."""
        cell_idx = tuple(cell_idx)
        if cell_idx not in (self.cell_a, self.cell_b):
            raise ConfigurationError(
                f"pair {self.pidx} got coords from non-member {cell_idx}")
        buf = self._coords_buf.setdefault(step, {})
        if cell_idx in buf:
            raise ConfigurationError(
                f"pair {self.pidx} got duplicate coords from {cell_idx} "
                f"at step {step}")
        buf[cell_idx] = positions
        self.charge(self.config.costs.coords_recv_cost())
        if len(buf) == self.expected_inputs:
            self._compute(step)

    # -- force computation ----------------------------------------------------------

    def _compute(self, step: int) -> None:
        cfg = self.config
        buf = self._coords_buf.pop(step)
        n = cfg.atoms_per_cell
        self.charge(cfg.costs.pair_compute_cost(
            interaction_count(n, n, self.is_self)))

        size = n * 24 + 64
        if cfg.payload != "real":
            self.cells_proxy[self.cell_a].forces_from(
                step, self.pidx, None, 0.0, _size=size, _tag="forces")
            if not self.is_self:
                self.cells_proxy[self.cell_b].forces_from(
                    step, self.pidx, None, 0.0, _size=size, _tag="forces")
            return

        if self.is_self:
            forces, potential = self_forces(
                buf[self.cell_a], self.charges_a, self.box, self.params)
            self.cells_proxy[self.cell_a].forces_from(
                step, self.pidx, forces, potential, _size=size,
                _tag="forces")
        else:
            f_a, f_b, potential = pair_forces(
                buf[self.cell_a], buf[self.cell_b],
                self.charges_a, self.charges_b, self.box, self.params)
            # Potential travels with cell_a's share only (no double count).
            self.cells_proxy[self.cell_a].forces_from(
                step, self.pidx, f_a, potential, _size=size, _tag="forces")
            self.cells_proxy[self.cell_b].forces_from(
                step, self.pidx, f_b, 0.0, _size=size, _tag="forces")

    def pack_size(self) -> int:
        n = self.config.atoms_per_cell
        return 512 + (0 if self.charges_a is None else 2 * n * 8)
