"""Molecular system construction for LeanMD.

Builds a deterministic, seeded system of atoms partitioned into the cell
grid: positions uniformly scattered inside each cell (so every cell-pair
has realistic interaction counts), Maxwell-Boltzmann velocities, and
alternating partial charges (so the electrostatic term is exercised with
no net monopole).

The cell edge equals the interaction cutoff — the standard link-cell
construction ensuring a cell's atoms interact only with the 26
neighbouring cells, which is what makes the paper's pair decomposition
exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.apps.leanmd.geometry import CellGrid, CellIndex
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class MdParams:
    """Force-field and integration parameters (reduced LJ units)."""

    cutoff: float = 1.0          # also the cell edge length
    epsilon: float = 1.0         # LJ well depth
    sigma: float = 0.3           # LJ diameter (< cutoff/3: stable lattice)
    coulomb_k: float = 0.2       # electrostatic prefactor
    mass: float = 1.0
    dt: float = 2e-4             # integration timestep

    def __post_init__(self) -> None:
        if self.cutoff <= 0 or self.sigma <= 0 or self.epsilon < 0:
            raise ConfigurationError("bad force-field parameters")
        if self.dt <= 0:
            raise ConfigurationError(f"bad timestep {self.dt}")


@dataclass
class CellState:
    """The per-cell atom arrays a Cell chare owns."""

    positions: np.ndarray   # (n, 3) absolute coordinates
    velocities: np.ndarray  # (n, 3)
    charges: np.ndarray     # (n,)

    @property
    def natoms(self) -> int:
        return len(self.positions)


@dataclass(frozen=True)
class MdSystem:
    """A complete initial condition, keyed by cell."""

    grid: CellGrid
    params: MdParams
    cells: Dict[CellIndex, CellState] = field(hash=False, compare=False,
                                              default_factory=dict)

    @property
    def box(self) -> np.ndarray:
        """Periodic box edge lengths (cells x cutoff)."""
        return np.array(self.grid.shape, dtype=np.float64) * self.params.cutoff

    @property
    def total_atoms(self) -> int:
        return sum(s.natoms for s in self.cells.values())

    def all_positions(self) -> np.ndarray:
        """Concatenated positions in sorted-cell order (reference input)."""
        return np.concatenate(
            [self.cells[c].positions for c in self.grid.cells()])

    def all_velocities(self) -> np.ndarray:
        return np.concatenate(
            [self.cells[c].velocities for c in self.grid.cells()])

    def all_charges(self) -> np.ndarray:
        return np.concatenate(
            [self.cells[c].charges for c in self.grid.cells()])


def build_system(grid: CellGrid, atoms_per_cell: int,
                 params: MdParams = MdParams(), seed: int = 0,
                 temperature: float = 0.5) -> MdSystem:
    """Construct the seeded initial condition.

    Atoms sit on a jittered sub-lattice inside each cell: guaranteed
    minimum separation keeps the initial LJ energy finite for any seed
    (uniformly random placement can put two atoms arbitrarily close,
    which detonates a 12-6 potential), while the jitter breaks symmetry
    so forces are nontrivial.
    """
    if atoms_per_cell <= 0:
        raise ConfigurationError(
            f"atoms_per_cell must be positive: {atoms_per_cell}")
    rng = np.random.default_rng(seed)
    cut = params.cutoff
    side = int(np.ceil(atoms_per_cell ** (1.0 / 3.0)))
    spacing = cut / side
    # All lattice slots of one cell, deterministic order.
    slots = np.array([(i, j, k) for i in range(side) for j in range(side)
                      for k in range(side)][:atoms_per_cell], dtype=float)
    cells: Dict[CellIndex, CellState] = {}
    for cell in grid.cells():
        origin = np.array(cell, dtype=np.float64) * cut
        jitter = (rng.random((atoms_per_cell, 3)) - 0.5) * (0.2 * spacing)
        pos = origin + (slots + 0.5) * spacing + jitter
        vel = rng.normal(scale=np.sqrt(temperature / params.mass),
                         size=(atoms_per_cell, 3))
        charges = np.where(np.arange(atoms_per_cell) % 2 == 0, 1.0, -1.0)
        cells[cell] = CellState(positions=pos, velocities=vel,
                                charges=charges)
    return MdSystem(grid=grid, params=params, cells=cells)
