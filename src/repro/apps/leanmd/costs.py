"""Calibrated cost model for LeanMD on the paper's hardware.

Anchor (paper §5.3): "Each computation step is about 8 second[s] on a
single processor" for 216 cells / 3,024 cell-pair objects.  With the
default 64 atoms/cell the step performs ~11.9 M pairwise distance
evaluations (2,808 neighbour pairs x 64x64 + 216 self-pairs x C(64,2)),
giving ~650 ns per evaluation on the 1.5 GHz Itanium-2 — plausible for
an unoptimized kernel with sqrt and several divisions per interaction.

Message-handling constants are the same era-scale values as the stencil
model (~10-20 us per message through the runtime + VMI stack).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CalibrationError


@dataclass(frozen=True)
class LeanMDCostModel:
    """Virtual-time costs of LeanMD entry methods."""

    #: Seconds per pairwise distance evaluation in a cell-pair object.
    per_interaction: float = 650e-9
    #: Fixed cost of one cell-pair force computation (setup, buffers).
    pair_fixed: float = 20e-6
    #: Seconds per atom to fold one arriving force contribution.
    force_fold_per_atom: float = 40e-9
    #: Fixed cost of handling one arriving message (coords or forces).
    msg_fixed: float = 10e-6
    #: Seconds per atom for the integrate (kick-drift) update.
    integrate_per_atom: float = 600e-9
    #: Fixed integrate cost.
    integrate_fixed: float = 15e-6
    #: Packing cost per destination PE of a coordinate multicast.
    multicast_per_target: float = 8e-6

    def __post_init__(self) -> None:
        for name in ("per_interaction", "pair_fixed", "force_fold_per_atom",
                     "msg_fixed", "integrate_per_atom", "integrate_fixed",
                     "multicast_per_target"):
            if getattr(self, name) < 0:
                raise CalibrationError(f"{name} must be >= 0")

    def pair_compute_cost(self, interactions: int) -> float:
        """One cell-pair force evaluation over *interactions* atom pairs."""
        return self.pair_fixed + self.per_interaction * interactions

    def coords_recv_cost(self) -> float:
        """A cell-pair receiving one cell's coordinates."""
        return self.msg_fixed

    def force_recv_cost(self, natoms: int) -> float:
        """A cell folding one pair's force contribution."""
        return self.msg_fixed + self.force_fold_per_atom * natoms

    def integrate_cost(self, natoms: int) -> float:
        """A cell integrating its atoms after all forces arrived."""
        return self.integrate_fixed + self.integrate_per_atom * natoms

    def multicast_cost(self, num_target_pes: int) -> float:
        """A cell packing its coordinate multicast."""
        return self.multicast_per_target * max(num_target_pes, 1)


#: Calibration used by the paper-reproduction benchmarks.
DEFAULT_LEANMD_COSTS = LeanMDCostModel()
