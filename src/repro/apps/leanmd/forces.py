"""Non-bonded force kernels: cutoff Lennard-Jones + Coulomb (NumPy).

These are the "electrostatic (and van der Waal's) interactions" of paper
§4, computed between atom sets with minimum-image periodic displacement
and a sharp radial cutoff.  Kernels are fully vectorized (broadcast
``(na, nb, 3)`` displacement tensors) per the domain guides.

Newton's third law holds element-wise exactly: the force a set B exerts
on set A and its reaction come from the *same* tensor (row-sums vs
negated column-sums), so each (i, j) contribution cancels its mirror
bit-for-bit; the two *totals* differ only by summation reassociation
(~1e-15 relative).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.apps.leanmd.system import MdParams


def _pairwise(pos_a: np.ndarray, pos_b: np.ndarray, q_a: np.ndarray,
              q_b: np.ndarray, box: np.ndarray, params: MdParams,
              exclude_diagonal: bool) -> Tuple[np.ndarray, float]:
    """Force tensor ``(na, nb, 3)`` of B acting on A, and total potential."""
    d = pos_a[:, None, :] - pos_b[None, :, :]
    d -= box * np.round(d / box)          # minimum image
    r2 = np.einsum("abk,abk->ab", d, d)

    mask = (r2 < params.cutoff * params.cutoff) & (r2 > 0.0)
    if exclude_diagonal and pos_a.shape[0] == pos_b.shape[0]:
        np.fill_diagonal(mask, False)
    inv_r2 = np.where(mask, 1.0 / np.where(r2 > 0.0, r2, 1.0), 0.0)

    # Lennard-Jones 12-6.
    s2 = (params.sigma * params.sigma) * inv_r2
    s6 = s2 * s2 * s2
    lj_scalar = 24.0 * params.epsilon * (2.0 * s6 * s6 - s6) * inv_r2
    lj_pot = 4.0 * params.epsilon * (s6 * s6 - s6)

    # Coulomb.
    qq = params.coulomb_k * np.outer(q_a, q_b)
    inv_r = np.sqrt(inv_r2)
    coul_scalar = qq * inv_r * inv_r2
    coul_pot = qq * inv_r

    scalar = np.where(mask, lj_scalar + coul_scalar, 0.0)
    potential = float(np.sum(np.where(mask, lj_pot + coul_pot, 0.0)))
    forces = scalar[:, :, None] * d
    return forces, potential


def pair_forces(pos_a: np.ndarray, pos_b: np.ndarray, q_a: np.ndarray,
                q_b: np.ndarray, box: np.ndarray, params: MdParams
                ) -> Tuple[np.ndarray, np.ndarray, float]:
    """Interactions between two *distinct* cells.

    Returns ``(f_a, f_b, potential)``; momentum is conserved up to
    float reassociation (``f_a.sum(0) ~ -f_b.sum(0)``).
    """
    tensor, potential = _pairwise(pos_a, pos_b, q_a, q_b, box, params,
                                  exclude_diagonal=False)
    f_a = tensor.sum(axis=1)
    f_b = -tensor.sum(axis=0)
    return f_a, f_b, potential


def self_forces(pos: np.ndarray, q: np.ndarray, box: np.ndarray,
                params: MdParams) -> Tuple[np.ndarray, float]:
    """Interactions among one cell's own atoms.

    The full ``n x n`` tensor double-counts each (i, j) pair, so the
    potential is halved; per-atom forces come out correct directly.
    """
    tensor, potential = _pairwise(pos, pos, q, q, box, params,
                                  exclude_diagonal=True)
    return tensor.sum(axis=1), 0.5 * potential


def interaction_count(na: int, nb: int, is_self: bool) -> int:
    """Distance evaluations a pair object performs (cost-model input)."""
    if is_self:
        return na * (na - 1) // 2
    return na * nb
