"""Time integration for LeanMD cells.

Paper §4: "In each time-step, each cell 'integrates' all forces on its
atoms, and changes their positions based on new acceleration and
velocities calculated."  That is a kick-then-drift (symplectic Euler /
leapfrog) step, which we implement verbatim; positions are wrapped back
into the periodic box.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.apps.leanmd.system import MdParams


def integrate(positions: np.ndarray, velocities: np.ndarray,
              forces: np.ndarray, box: np.ndarray, params: MdParams
              ) -> Tuple[np.ndarray, np.ndarray]:
    """One kick-drift step; returns new ``(positions, velocities)``.

    Inputs are not modified (cells keep the previous step's state until
    every force contribution has been folded in).
    """
    if positions.shape != velocities.shape or positions.shape != forces.shape:
        raise ValueError(
            f"shape mismatch: pos {positions.shape}, vel "
            f"{velocities.shape}, f {forces.shape}")
    new_v = velocities + (params.dt / params.mass) * forces
    new_x = positions + params.dt * new_v
    new_x = np.mod(new_x, box)   # periodic wrap
    return new_x, new_v


def kinetic_energy(velocities: np.ndarray, params: MdParams) -> float:
    """Total kinetic energy of one cell's atoms."""
    return 0.5 * params.mass * float(np.sum(velocities * velocities))
