"""LeanMD: classical molecular dynamics on message-driven objects
(paper §4, §5.3).

216 cells, 3,024 cell-pair objects, coordinate multicasts and force
returns — the paper's "more representative of realistic scientific
codes" workload.
"""

from repro.apps.leanmd.cell import Cell, LeanMDRunConfig
from repro.apps.leanmd.cellpair import CellPair
from repro.apps.leanmd.costs import DEFAULT_LEANMD_COSTS, LeanMDCostModel
from repro.apps.leanmd.driver import LeanMDApp, LeanMDResult, run_leanmd
from repro.apps.leanmd.forces import (
    interaction_count,
    pair_forces,
    self_forces,
)
from repro.apps.leanmd.geometry import (
    NEIGHBOR_OFFSETS,
    CellGrid,
    pair_index,
    split_pair,
)
from repro.apps.leanmd.integrator import integrate, kinetic_energy
from repro.apps.leanmd.reference import (
    ReferenceTrajectory,
    run_reference,
    total_forces,
)
from repro.apps.leanmd.system import (
    CellState,
    MdParams,
    MdSystem,
    build_system,
)

__all__ = [
    "LeanMDApp",
    "LeanMDResult",
    "run_leanmd",
    "Cell",
    "CellPair",
    "LeanMDRunConfig",
    "LeanMDCostModel",
    "DEFAULT_LEANMD_COSTS",
    "CellGrid",
    "pair_index",
    "split_pair",
    "NEIGHBOR_OFFSETS",
    "MdParams",
    "MdSystem",
    "CellState",
    "build_system",
    "pair_forces",
    "self_forces",
    "interaction_count",
    "integrate",
    "kinetic_energy",
    "run_reference",
    "total_forces",
    "ReferenceTrajectory",
]
