"""Cell-grid geometry for LeanMD.

Paper §4: atoms are partitioned into a grid of cells; "electrostatic (and
van der Waal's) interactions between every pair of neighboring cells are
computed by a separate cell-pair object ... it then multicasts its atom's
coordinates to the 26 cell-pairs that depend on it ... in the benchmark
used in this paper, there are 216 cells and 3,024 cell pairs."

216 = 6x6x6 cells; 3,024 = 2,808 distinct 26-neighbour pairs (periodic)
plus 216 self-pairs (intra-cell interactions).  This module reproduces
that object graph for any grid shape:

* cell indices are ``(x, y, z)`` tuples;
* pair indices are 6-tuples ``cell_a + cell_b`` with ``cell_a <= cell_b``
  lexicographically (self-pairs have ``cell_a == cell_b``);
* wrapping duplicates in small grids are deduplicated.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Dict, List, Tuple

from repro.errors import ConfigurationError

CellIndex = Tuple[int, int, int]
PairIndex = Tuple[int, int, int, int, int, int]

#: The 26 neighbour offsets of a cell (3x3x3 cube minus the centre).
NEIGHBOR_OFFSETS: Tuple[CellIndex, ...] = tuple(
    off for off in product((-1, 0, 1), repeat=3) if off != (0, 0, 0))


def pair_index(cell_a: CellIndex, cell_b: CellIndex) -> PairIndex:
    """Canonical (ordered) pair index of two cells."""
    lo, hi = (cell_a, cell_b) if cell_a <= cell_b else (cell_b, cell_a)
    return lo + hi


def split_pair(pair: PairIndex) -> Tuple[CellIndex, CellIndex]:
    """Inverse of :func:`pair_index`."""
    return pair[:3], pair[3:]


@dataclass(frozen=True)
class CellGrid:
    """A periodic grid of interaction cells.

    Parameters
    ----------
    shape:
        Cells along each axis; the paper's benchmark is ``(6, 6, 6)``.
    """

    shape: CellIndex

    def __post_init__(self) -> None:
        if len(self.shape) != 3 or any(s <= 0 for s in self.shape):
            raise ConfigurationError(f"bad cell-grid shape {self.shape!r}")

    # -- basic queries -----------------------------------------------------

    @property
    def num_cells(self) -> int:
        sx, sy, sz = self.shape
        return sx * sy * sz

    def cells(self) -> List[CellIndex]:
        """All cell indices, lexicographically ordered."""
        sx, sy, sz = self.shape
        return [(x, y, z) for x in range(sx) for y in range(sy)
                for z in range(sz)]

    def wrap(self, raw: CellIndex) -> CellIndex:
        """Periodic wrap of a possibly out-of-range index."""
        return (raw[0] % self.shape[0], raw[1] % self.shape[1],
                raw[2] % self.shape[2])

    def neighbors(self, cell: CellIndex) -> List[CellIndex]:
        """Distinct neighbouring cells (excluding *cell* itself).

        On grids narrower than 3 along an axis, several offsets wrap to
        the same neighbour; duplicates (and wraps back onto *cell*) are
        removed, keeping the pair graph simple.
        """
        self._check(cell)
        seen = set()
        for off in NEIGHBOR_OFFSETS:
            nbr = self.wrap((cell[0] + off[0], cell[1] + off[1],
                             cell[2] + off[2]))
            if nbr != cell:
                seen.add(nbr)
        return sorted(seen)

    # -- the pair graph ------------------------------------------------------

    def pairs(self) -> List[PairIndex]:
        """All cell-pair object indices (neighbour pairs + self-pairs)."""
        out = set()
        for cell in self.cells():
            out.add(pair_index(cell, cell))
            for nbr in self.neighbors(cell):
                out.add(pair_index(cell, nbr))
        return sorted(out)

    def pairs_of_cell(self, cell: CellIndex) -> List[PairIndex]:
        """The pair objects depending on *cell* (its multicast section)."""
        self._check(cell)
        out = {pair_index(cell, cell)}
        for nbr in self.neighbors(cell):
            out.add(pair_index(cell, nbr))
        return sorted(out)

    def pair_counts(self) -> Dict[str, int]:
        """Summary counts (used by tests against the paper's numbers)."""
        pairs = self.pairs()
        self_pairs = sum(1 for p in pairs if p[:3] == p[3:])
        return {
            "cells": self.num_cells,
            "pairs": len(pairs),
            "self_pairs": self_pairs,
            "neighbor_pairs": len(pairs) - self_pairs,
        }

    def _check(self, cell: CellIndex) -> None:
        if self.wrap(cell) != cell:
            raise ConfigurationError(
                f"cell {cell} outside grid {self.shape}")
