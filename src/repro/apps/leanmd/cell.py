"""The Cell chare: owns atoms, integrates, multicasts coordinates.

Per time step a cell (paper §4):

1. multicasts its atoms' coordinates to the cell-pair objects that
   depend on it (its 26 neighbour pairs plus its self-pair);
2. receives one force contribution from each of those pairs —
   message-driven, so the PE runs other cells/pairs meanwhile;
3. when all contributions are in, folds them (in deterministic sorted
   pair order), integrates, and starts the next step.

Cross-cluster pairs make some contributions arrive a WAN round-trip
late; the scheduler fills that gap with "subset A" objects (paper's
term) whose dependencies are cluster-local.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.apps.leanmd.costs import DEFAULT_LEANMD_COSTS, LeanMDCostModel
from repro.apps.leanmd.geometry import CellGrid, CellIndex, PairIndex
from repro.apps.leanmd.integrator import integrate, kinetic_energy
from repro.apps.leanmd.system import CellState, MdParams
from repro.core.chare import Chare
from repro.core.collectives import group_targets_by_pe
from repro.core.method import entry
from repro.errors import ConfigurationError

PAYLOAD_MODES = ("real", "modeled")


@dataclass(frozen=True)
class LeanMDRunConfig:
    """Per-run settings shared by all cells and pairs."""

    steps: int
    atoms_per_cell: int
    payload: str = "real"
    costs: LeanMDCostModel = field(default_factory=lambda: DEFAULT_LEANMD_COSTS)
    gather_positions: bool = False

    def __post_init__(self) -> None:
        if self.steps < 0:
            raise ConfigurationError(f"negative steps {self.steps}")
        if self.atoms_per_cell <= 0:
            raise ConfigurationError("atoms_per_cell must be positive")
        if self.payload not in PAYLOAD_MODES:
            raise ConfigurationError(f"bad payload {self.payload!r}")


class Cell(Chare):
    """One interaction cell of the LeanMD decomposition."""

    def __init__(self, cidx: CellIndex, grid: CellGrid, params: MdParams,
                 config: LeanMDRunConfig, state: Optional[CellState],
                 done_targets: Tuple[Any, Any, Any, Any]) -> None:
        super().__init__()
        self.cidx = cidx
        self.grid = grid
        self.params = params
        self.config = config
        self.done_targets = done_targets  # (times, ke, pe, positions)
        self.my_pairs: List[PairIndex] = grid.pairs_of_cell(cidx)
        self.box = np.array(grid.shape, dtype=np.float64) * params.cutoff

        if config.payload == "real":
            if state is None or state.natoms != config.atoms_per_cell:
                raise ConfigurationError(
                    f"cell {cidx} expects {config.atoms_per_cell} atoms")
            self.positions = state.positions.copy()
            self.velocities = state.velocities.copy()
            self.charges = state.charges.copy()
        else:
            self.positions = None
            self.velocities = None
            self.charges = None

        self.step = 0
        self._section = None
        self._force_buf: Dict[int, Dict[PairIndex, Any]] = {}
        self._pot_buf: Dict[int, float] = {}
        self.times: List[float] = []
        self.ke_trace: List[float] = []
        self.pe_trace: List[float] = []
        self._finished = False

    @property
    def natoms(self) -> int:
        return self.config.atoms_per_cell

    # -- entry methods -----------------------------------------------------

    @entry
    def setup(self, pairs_proxy, ready_target) -> None:
        """Bind the multicast section over this cell's pair objects.

        Contributes to a readiness reduction; the driver broadcasts
        :meth:`go` from its callback, so no cell can see ``go`` before
        every cell finished ``setup`` (a small ``go`` message could
        otherwise overtake the larger ``setup`` broadcast on the wire).
        """
        self._section = pairs_proxy.section(self.my_pairs)
        self.contribute(None, "nop", ready_target)

    @entry
    def go(self) -> None:
        """Start the run (after :meth:`setup`)."""
        if self._section is None:
            raise ConfigurationError(
                f"cell {self.cidx} started before setup()")
        if self.config.steps == 0:
            self._finish()
            return
        self._multicast_coords()

    @entry
    def forces_from(self, step: int, pair_idx: tuple, forces: Any,
                    potential: float) -> None:
        """One pair object's force contribution for *step* arrived."""
        pair_idx = tuple(pair_idx)
        buf = self._force_buf.setdefault(step, {})
        if pair_idx in buf:
            raise ConfigurationError(
                f"cell {self.cidx} got duplicate forces from {pair_idx} "
                f"at step {step}")
        buf[pair_idx] = forces
        self._pot_buf[step] = self._pot_buf.get(step, 0.0) + potential
        self.charge(self.config.costs.force_recv_cost(self.natoms))
        if step == self.step and len(buf) == len(self.my_pairs):
            self._integrate_step()

    # -- internals ------------------------------------------------------------

    def _multicast_coords(self) -> None:
        rts = self._require_rts()
        groups = group_targets_by_pe(rts, self._section._collection,
                                     self.my_pairs)
        self.charge(self.config.costs.multicast_cost(len(groups)))
        payload = (self.positions.copy()
                   if self.config.payload == "real" else None)
        self._section.coords(
            self.step, self.cidx, payload,
            _size=self.natoms * 24 + 64, _tag=f"coords s{self.step}")

    def _integrate_step(self) -> None:
        cfg = self.config
        contributions = self._force_buf.pop(self.step)
        potential = self._pot_buf.pop(self.step, 0.0)
        self.charge(cfg.costs.integrate_cost(self.natoms))

        if cfg.payload == "real":
            # Deterministic fold: sorted pair order, not arrival order,
            # so results do not depend on latency or mapping.
            total = np.zeros((self.natoms, 3))
            for pidx in sorted(contributions):
                total += contributions[pidx]
            self.positions, self.velocities = integrate(
                self.positions, self.velocities, total, self.box,
                self.params)
            self.ke_trace.append(kinetic_energy(self.velocities,
                                                self.params))
        else:
            self.ke_trace.append(0.0)
        self.pe_trace.append(potential)

        self.step += 1
        self.times.append(self.now)
        if self.step >= cfg.steps:
            self._finish()
        else:
            self._multicast_coords()

    def _finish(self) -> None:
        self._finished = True
        times_cb, ke_cb, pe_cb, pos_cb = self.done_targets
        self.contribute(np.array(self.times, dtype=np.float64), "max",
                        times_cb)
        self.contribute(np.array(self.ke_trace, dtype=np.float64), "sum",
                        ke_cb)
        self.contribute(np.array(self.pe_trace, dtype=np.float64), "sum",
                        pe_cb)
        if self.config.gather_positions:
            payload = None
            if self.config.payload == "real":
                payload = (self.positions.copy(), self.velocities.copy())
            self.contribute(payload, "concat", pos_cb)

    def pack_size(self) -> int:
        if self.positions is None:
            return 1024
        return int(self.positions.nbytes + self.velocities.nbytes
                   + self.charges.nbytes) + 1024
