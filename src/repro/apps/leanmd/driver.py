"""LeanMD application driver.

Builds the 216-cell / 3,024-pair object graph (or any other grid shape)
on a grid environment, runs it, and reports the per-step times of the
paper's Figure 4 / Table 2.

Default placement, matching the paper's "runs were conducted without any
load balancing":

* cells are cluster-split along x (half the simulation box per cluster)
  and block-distributed within each cluster;
* each pair object is co-located with its first cell — so pairs whose
  second cell lives across the seam are exactly the paper's "subset B"
  (WAN-fed) objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.apps.leanmd.cell import Cell, LeanMDRunConfig
from repro.apps.leanmd.cellpair import CellPair
from repro.apps.leanmd.costs import LeanMDCostModel
from repro.apps.leanmd.geometry import CellGrid, split_pair
from repro.apps.leanmd.system import MdParams, MdSystem, build_system
from repro.core.mapping import ExplicitMapping, grid3d_split_mapping
from repro.errors import ConfigurationError
from repro.grid.environment import GridEnvironment
from repro.units import to_ms


@dataclass
class LeanMDResult:
    """Outcome of one LeanMD run."""

    step_times: np.ndarray      # virtual completion time per step (s)
    kinetic: np.ndarray         # total KE per step
    potential: np.ndarray       # total PE per step
    final_state: Optional[Dict] # cell -> (positions, velocities)
    makespan: float
    warmup: int

    @property
    def steps(self) -> int:
        return len(self.step_times)

    @property
    def time_per_step(self) -> float:
        """Steady-state seconds/step (paper's Figure 4 / Table 2 metric)."""
        if self.steps == 0:
            return 0.0
        if self.steps <= self.warmup + 1:
            return self.step_times[-1] / max(self.steps, 1)
        window = self.step_times[self.warmup:]
        return float(window[-1] - window[0]) / (len(window) - 1)

    @property
    def time_per_step_ms(self) -> float:
        return to_ms(self.time_per_step)

    @property
    def total_energy(self) -> np.ndarray:
        return self.kinetic + self.potential


class LeanMDApp:
    """The paper's molecular-dynamics experiment on one environment."""

    def __init__(self, env: GridEnvironment,
                 cells: Tuple[int, int, int] = (6, 6, 6),
                 atoms_per_cell: int = 64, payload: str = "real",
                 params: Optional[MdParams] = None,
                 costs: Optional[LeanMDCostModel] = None,
                 seed: int = 0, gather_positions: bool = False,
                 pair_mapping: Optional[str] = None) -> None:
        self.env = env
        self.grid = CellGrid(cells)
        self.atoms_per_cell = atoms_per_cell
        self.payload = payload
        self.params = params or MdParams()
        self.costs = costs
        self.seed = seed
        self.gather_positions = gather_positions
        if pair_mapping not in (None, "balanced", "colocated"):
            raise ConfigurationError(
                f"pair_mapping must be 'balanced' (default) or "
                f"'colocated', got {pair_mapping!r}")
        #: "balanced" deals pairs round-robin per cluster (default);
        #: "colocated" pins every pair to its first cell's PE — the
        #: naive placement whose imbalance the load-balancing ablation
        #: measures and repairs.
        self.pair_mapping = pair_mapping or "balanced"
        self._results: Dict[str, object] = {}

    # -- reduction callbacks -----------------------------------------------

    def _on_times(self, times) -> None:
        self._results["times"] = times

    def _on_ke(self, ke) -> None:
        self._results["ke"] = ke

    def _on_pe(self, pe) -> None:
        self._results["pe"] = pe

    def _on_positions(self, pairs) -> None:
        self._results["positions"] = pairs

    # -- the run --------------------------------------------------------------

    def run(self, steps: int, warmup: Optional[int] = None) -> LeanMDResult:
        if steps <= 0:
            raise ConfigurationError(f"steps must be positive: {steps}")
        if warmup is None:
            warmup = min(max(steps // 5, 1), 5)
        if warmup >= steps:
            raise ConfigurationError(
                f"warmup {warmup} must be < steps {steps}")

        cfg_kwargs = {"steps": steps, "atoms_per_cell": self.atoms_per_cell,
                      "payload": self.payload,
                      "gather_positions": self.gather_positions}
        if self.costs is not None:
            cfg_kwargs["costs"] = self.costs
        config = LeanMDRunConfig(**cfg_kwargs)

        system: Optional[MdSystem] = None
        if self.payload == "real":
            system = build_system(self.grid, self.atoms_per_cell,
                                  self.params, self.seed)

        rts = self.env.runtime
        grid = self.grid
        params = self.params
        targets = (self._on_times, self._on_ke, self._on_pe,
                   self._on_positions)

        # -- cells ----------------------------------------------------------
        cell_mapping = grid3d_split_mapping(
            grid.shape[0], self.env.topology, axis=0, within="block")

        def cell_args(idx):
            state = system.cells[idx] if system is not None else None
            return ((idx, grid, params, config, state, targets), {})

        cells_proxy = rts.create_array(Cell, grid.cells(), cell_mapping,
                                       args_of=cell_args)

        # -- pairs: cluster of one of their cells, spread round-robin ---------
        # A pair belongs with its cells' cluster (keeping most coordinate
        # traffic off the WAN); seam-straddling pairs alternate between
        # their two cells' clusters so neither cluster inherits the whole
        # seam.  Within a cluster, pairs deal round-robin over the PEs —
        # the "no load balancing" default placement of the paper's runs.
        topo = self.env.topology
        cell_pe = rts.collection_mapping(cells_proxy.collection)
        pair_table = {}
        if self.pair_mapping == "colocated":
            for p in grid.pairs():
                pair_table[p] = cell_pe[split_pair(p)[0]]
        else:
            rr_next = {c: 0 for c in range(topo.num_clusters)}
            for p in grid.pairs():
                a, b = split_pair(p)
                ca = topo.cluster_of(cell_pe[a])
                cb = topo.cluster_of(cell_pe[b])
                cluster = ca if (ca == cb or sum(p) % 2 == 0) else cb
                pes = topo.cluster_pes(cluster)
                pair_table[p] = pes[rr_next[cluster] % len(pes)]
                rr_next[cluster] += 1
        box = np.array(grid.shape, dtype=np.float64) * params.cutoff

        def pair_args(idx):
            a, b = split_pair(idx)
            qa = system.cells[a].charges if system is not None else None
            qb = system.cells[b].charges if system is not None else None
            return ((idx, params, config, cells_proxy, box, qa, qb), {})

        pairs_proxy = rts.create_array(
            CellPair, grid.pairs(), ExplicitMapping(pair_table),
            args_of=pair_args)

        # -- go ------------------------------------------------------------------
        t0 = self.env.now

        def all_ready(_none) -> None:
            cells_proxy.go()

        cells_proxy.setup(pairs_proxy, all_ready)
        self.env.run()

        if "times" not in self._results:
            raise ConfigurationError(
                "run ended without completing (deadlock?)")
        times = np.asarray(self._results["times"], dtype=np.float64) - t0

        final_state = None
        if self.gather_positions and self.payload == "real":
            final_state = {tuple(idx): state
                           for idx, state in self._results["positions"]}

        return LeanMDResult(
            step_times=times,
            kinetic=np.asarray(self._results["ke"], dtype=np.float64),
            potential=np.asarray(self._results["pe"], dtype=np.float64),
            final_state=final_state,
            makespan=self.env.now - t0,
            warmup=warmup,
        )


def run_leanmd(env: GridEnvironment, cells: Tuple[int, int, int] = (6, 6, 6),
               atoms_per_cell: int = 64, steps: int = 10,
               payload: str = "modeled",
               costs: Optional[LeanMDCostModel] = None,
               warmup: Optional[int] = None) -> LeanMDResult:
    """One-call convenience wrapper used by the benchmark sweeps."""
    app = LeanMDApp(env, cells=cells, atoms_per_cell=atoms_per_cell,
                    payload=payload, costs=costs)
    return app.run(steps, warmup=warmup)
