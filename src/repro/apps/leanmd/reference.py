"""Sequential O(N^2) reference for LeanMD.

Computes every atom's net force by direct summation over all atoms
(minimum-image, same cutoff, same kernels' mathematics) and integrates
with the same kick-drift step.  Used by the validation tests on small
systems: the parallel cell/cell-pair decomposition must agree to within
floating-point reassociation tolerance, step after step, at any latency
and mapping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.apps.leanmd.system import MdParams, MdSystem


@dataclass
class ReferenceTrajectory:
    """Output of :func:`run_reference`."""

    positions: np.ndarray      # (n, 3) final
    velocities: np.ndarray     # (n, 3) final
    kinetic: List[float]       # per step, after integration
    potential: List[float]     # per step, at pre-update positions


def total_forces(positions: np.ndarray, charges: np.ndarray,
                 box: np.ndarray, params: MdParams
                 ) -> Tuple[np.ndarray, float]:
    """All-pairs cutoff forces and total potential (direct summation)."""
    d = positions[:, None, :] - positions[None, :, :]
    d -= box * np.round(d / box)
    r2 = np.einsum("abk,abk->ab", d, d)
    mask = (r2 < params.cutoff * params.cutoff) & (r2 > 0.0)
    np.fill_diagonal(mask, False)
    inv_r2 = np.where(mask, 1.0 / np.where(r2 > 0.0, r2, 1.0), 0.0)

    s2 = (params.sigma * params.sigma) * inv_r2
    s6 = s2 * s2 * s2
    lj_scalar = 24.0 * params.epsilon * (2.0 * s6 * s6 - s6) * inv_r2
    lj_pot = 4.0 * params.epsilon * (s6 * s6 - s6)

    qq = params.coulomb_k * np.outer(charges, charges)
    inv_r = np.sqrt(inv_r2)
    coul_scalar = qq * inv_r * inv_r2
    coul_pot = qq * inv_r

    scalar = np.where(mask, lj_scalar + coul_scalar, 0.0)
    forces = (scalar[:, :, None] * d).sum(axis=1)
    potential = 0.5 * float(np.sum(np.where(mask, lj_pot + coul_pot, 0.0)))
    return forces, potential


def run_reference(system: MdSystem, steps: int) -> ReferenceTrajectory:
    """Advance the whole system *steps* steps sequentially."""
    params = system.params
    box = system.box
    pos = system.all_positions().copy()
    vel = system.all_velocities().copy()
    charges = system.all_charges().copy()

    kinetic: List[float] = []
    potential: List[float] = []
    for _ in range(steps):
        forces, pot = total_forces(pos, charges, box, params)
        vel = vel + (params.dt / params.mass) * forces
        pos = np.mod(pos + params.dt * vel, box)
        kinetic.append(0.5 * params.mass * float(np.sum(vel * vel)))
        potential.append(pot)
    return ReferenceTrajectory(positions=pos, velocities=vel,
                               kinetic=kinetic, potential=potential)
