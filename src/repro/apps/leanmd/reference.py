"""Sequential O(N^2) reference for LeanMD.

Computes every atom's net force by direct summation over all atoms
(minimum-image, same cutoff, same kernels' mathematics) and integrates
with the same kick-drift step.  Used by the validation tests on small
systems: the parallel cell/cell-pair decomposition must agree to within
floating-point reassociation tolerance, step after step, at any latency
and mapping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.apps.leanmd.system import MdParams, MdSystem


@dataclass
class ReferenceTrajectory:
    """Output of :func:`run_reference`."""

    positions: np.ndarray      # (n, 3) final
    velocities: np.ndarray     # (n, 3) final
    kinetic: List[float]       # per step, after integration
    potential: List[float]     # per step, at pre-update positions


def total_forces(positions: np.ndarray, charges: np.ndarray,
                 box: np.ndarray, params: MdParams
                 ) -> Tuple[np.ndarray, float]:
    """All-pairs cutoff forces and total potential (direct summation)."""
    d = positions[:, None, :] - positions[None, :, :]
    d -= box * np.round(d / box)
    r2 = np.einsum("abk,abk->ab", d, d)
    mask = (r2 < params.cutoff * params.cutoff) & (r2 > 0.0)
    np.fill_diagonal(mask, False)
    inv_r2 = np.where(mask, 1.0 / np.where(r2 > 0.0, r2, 1.0), 0.0)

    s2 = (params.sigma * params.sigma) * inv_r2
    s6 = s2 * s2 * s2
    lj_scalar = 24.0 * params.epsilon * (2.0 * s6 * s6 - s6) * inv_r2
    lj_pot = 4.0 * params.epsilon * (s6 * s6 - s6)

    qq = params.coulomb_k * np.outer(charges, charges)
    inv_r = np.sqrt(inv_r2)
    coul_scalar = qq * inv_r * inv_r2
    coul_pot = qq * inv_r

    scalar = np.where(mask, lj_scalar + coul_scalar, 0.0)
    forces = (scalar[:, :, None] * d).sum(axis=1)
    potential = 0.5 * float(np.sum(np.where(mask, lj_pot + coul_pot, 0.0)))
    return forces, potential


def _scalar_interaction(dx: float, dy: float, dz: float, qq: float,
                        params: MdParams) -> Tuple[float, float]:
    """Force scalar and potential of one (i, j) pair in Python floats."""
    r2 = dx * dx + dy * dy + dz * dz
    if not (0.0 < r2 < params.cutoff * params.cutoff):
        return 0.0, 0.0
    inv_r2 = 1.0 / r2
    s2 = (params.sigma * params.sigma) * inv_r2
    s6 = s2 * s2 * s2
    lj_scalar = 24.0 * params.epsilon * (2.0 * s6 * s6 - s6) * inv_r2
    lj_pot = 4.0 * params.epsilon * (s6 * s6 - s6)
    inv_r = inv_r2 ** 0.5
    coul_scalar = qq * inv_r * inv_r2
    coul_pot = qq * inv_r
    return lj_scalar + coul_scalar, lj_pot + coul_pot


def pair_forces_percell(pos_a: np.ndarray, pos_b: np.ndarray,
                        q_a: np.ndarray, q_b: np.ndarray, box: np.ndarray,
                        params: MdParams
                        ) -> Tuple[np.ndarray, np.ndarray, float]:
    """Per-atom scalar version of :func:`~repro.apps.leanmd.forces.pair_forces`.

    The ground truth the vectorized block kernel is validated against: a
    plain double loop over (i, j) atom pairs with minimum-image applied
    per component.  Agreement with the broadcast tensor kernel is up to
    summation reassociation only (row sums vs sequential accumulation),
    which the equivalence tests bound tightly.
    """
    bx, by, bz = (float(box[0]), float(box[1]), float(box[2]))
    f_a = np.zeros_like(pos_a)
    f_b = np.zeros_like(pos_b)
    potential = 0.0
    a = pos_a.tolist()
    b = pos_b.tolist()
    for i, (axi, ayi, azi) in enumerate(a):
        for j, (bxj, byj, bzj) in enumerate(b):
            dx = axi - bxj
            dy = ayi - byj
            dz = azi - bzj
            dx -= bx * round(dx / bx)
            dy -= by * round(dy / by)
            dz -= bz * round(dz / bz)
            qq = params.coulomb_k * float(q_a[i]) * float(q_b[j])
            scalar, pot = _scalar_interaction(dx, dy, dz, qq, params)
            if scalar == 0.0 and pot == 0.0:
                continue
            fx, fy, fz = scalar * dx, scalar * dy, scalar * dz
            f_a[i, 0] += fx
            f_a[i, 1] += fy
            f_a[i, 2] += fz
            f_b[j, 0] -= fx
            f_b[j, 1] -= fy
            f_b[j, 2] -= fz
            potential += pot
    return f_a, f_b, potential


def self_forces_percell(pos: np.ndarray, q: np.ndarray, box: np.ndarray,
                        params: MdParams) -> Tuple[np.ndarray, float]:
    """Per-atom scalar version of :func:`~repro.apps.leanmd.forces.self_forces`.

    Each unordered pair is visited once; Newton's third law is applied
    explicitly, and the potential is counted once per pair (matching the
    halved double-counted tensor sum of the block kernel).
    """
    bx, by, bz = (float(box[0]), float(box[1]), float(box[2]))
    forces = np.zeros_like(pos)
    potential = 0.0
    p = pos.tolist()
    n = len(p)
    for i in range(n):
        axi, ayi, azi = p[i]
        for j in range(i + 1, n):
            dx = axi - p[j][0]
            dy = ayi - p[j][1]
            dz = azi - p[j][2]
            dx -= bx * round(dx / bx)
            dy -= by * round(dy / by)
            dz -= bz * round(dz / bz)
            qq = params.coulomb_k * float(q[i]) * float(q[j])
            scalar, pot = _scalar_interaction(dx, dy, dz, qq, params)
            if scalar == 0.0 and pot == 0.0:
                continue
            fx, fy, fz = scalar * dx, scalar * dy, scalar * dz
            forces[i, 0] += fx
            forces[i, 1] += fy
            forces[i, 2] += fz
            forces[j, 0] -= fx
            forces[j, 1] -= fy
            forces[j, 2] -= fz
            potential += pot
    return forces, potential


def run_reference(system: MdSystem, steps: int) -> ReferenceTrajectory:
    """Advance the whole system *steps* steps sequentially."""
    params = system.params
    box = system.box
    pos = system.all_positions().copy()
    vel = system.all_velocities().copy()
    charges = system.all_charges().copy()

    kinetic: List[float] = []
    potential: List[float] = []
    for _ in range(steps):
        forces, pot = total_forces(pos, charges, box, params)
        vel = vel + (params.dt / params.mass) * forces
        pos = np.mod(pos + params.dt * vel, box)
        kinetic.append(0.5 * params.mass * float(np.sum(vel * vel)))
        potential.append(pot)
    return ReferenceTrajectory(positions=pos, velocities=vel,
                               kinetic=kinetic, potential=potential)
