"""Applications: the paper's two experimental workloads."""
