"""Sequential reference implementation of the five-point stencil.

Runs the identical Jacobi update on the whole mesh with Dirichlet
boundaries.  The parallel chare and AMPI implementations must produce
**bit-identical** meshes after any number of steps, at any decomposition
and any latency — that invariant is what certifies the runtime moves
data correctly, and several tests and a hypothesis property pin it down.
"""

from __future__ import annotations

import numpy as np


def run_reference(mesh: np.ndarray, steps: int) -> np.ndarray:
    """Advance *mesh* by *steps* Jacobi iterations (boundary fixed).

    Returns a new array; the input is untouched.
    """
    if steps < 0:
        raise ValueError(f"negative step count {steps}")
    current = np.array(mesh, dtype=np.float64, copy=True)
    if min(current.shape) < 3 or steps == 0:
        return current
    nxt = current.copy()
    for _ in range(steps):
        nxt[1:-1, 1:-1] = 0.25 * (
            current[:-2, 1:-1] + current[2:, 1:-1]
            + current[1:-1, :-2] + current[1:-1, 2:])
        current, nxt = nxt, current
    return current


def checksum(mesh: np.ndarray) -> float:
    """Deterministic scalar fingerprint used by drivers and tests."""
    return float(np.sum(mesh)) + float(np.sum(mesh[::7, ::13]))
