"""Sequential reference implementation of the five-point stencil.

Runs the identical Jacobi update on the whole mesh with Dirichlet
boundaries.  The parallel chare and AMPI implementations must produce
**bit-identical** meshes after any number of steps, at any decomposition
and any latency — that invariant is what certifies the runtime moves
data correctly, and several tests and a hypothesis property pin it down.
"""

from __future__ import annotations

import numpy as np


def run_reference(mesh: np.ndarray, steps: int) -> np.ndarray:
    """Advance *mesh* by *steps* Jacobi iterations (boundary fixed).

    Returns a new array; the input is untouched.
    """
    if steps < 0:
        raise ValueError(f"negative step count {steps}")
    current = np.array(mesh, dtype=np.float64, copy=True)
    if min(current.shape) < 3 or steps == 0:
        return current
    nxt = current.copy()
    for _ in range(steps):
        nxt[1:-1, 1:-1] = 0.25 * (
            current[:-2, 1:-1] + current[2:, 1:-1]
            + current[1:-1, :-2] + current[1:-1, 2:])
        current, nxt = nxt, current
    return current


def jacobi_step_percell(padded: np.ndarray) -> np.ndarray:
    """Per-cell scalar Jacobi update of a ghost-padded block.

    The ground truth the numpy block kernels are validated against: a
    plain double loop in Python floats, no vectorization, applying the
    identical ``((north + south) + west + east) * 0.25`` association so
    the result is bit-equal to :func:`~repro.apps.stencil.kernel.jacobi_step`
    on any shape.  Orders of magnitude slower than the block kernel —
    that gap is exactly what the kernel benchmark measures — so it is
    only ever run on small blocks in tests and in the ``kernel="percell"``
    flavor of the stencil app.
    """
    if padded.ndim != 2 or padded.shape[0] < 3 or padded.shape[1] < 3:
        raise ValueError(f"padded block too small: {padded.shape}")
    h, w = padded.shape[0] - 2, padded.shape[1] - 2
    out = np.empty((h, w), dtype=np.float64)
    cells = padded.tolist()
    for i in range(h):
        north = cells[i]
        mid = cells[i + 1]
        south = cells[i + 2]
        row = out[i]
        for j in range(w):
            row[j] = ((north[j + 1] + south[j + 1])
                      + mid[j] + mid[j + 2]) * 0.25
    return out


def run_reference_percell(mesh: np.ndarray, steps: int) -> np.ndarray:
    """:func:`run_reference` computed through :func:`jacobi_step_percell`.

    Used by equivalence tests to certify the vectorized whole-mesh update
    against scalar arithmetic; bit-identical to :func:`run_reference`.
    """
    if steps < 0:
        raise ValueError(f"negative step count {steps}")
    current = np.array(mesh, dtype=np.float64, copy=True)
    if min(current.shape) < 3 or steps == 0:
        return current
    for _ in range(steps):
        nxt = current.copy()
        nxt[1:-1, 1:-1] = jacobi_step_percell(current)
        current = nxt
    return current


def checksum(mesh: np.ndarray) -> float:
    """Deterministic scalar fingerprint used by drivers and tests."""
    return float(np.sum(mesh)) + float(np.sum(mesh[::7, ::13]))
