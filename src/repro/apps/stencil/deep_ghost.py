"""Ghost-zone expansion: the algorithm-level alternative (paper §3).

The paper contrasts its runtime-level latency masking with Ding & He's
*ghost cell expansion* [6]: widen each block's halo to ``depth`` cells,
exchange every ``depth`` steps, and compute the intermediate steps
locally on a shrinking valid region.  Fewer, larger messages trade
redundant computation for latency amortization — a pattern-specific
technique (it "is not applicable to all problems such as ... LeanMD"),
which is exactly why it makes the right ablation baseline for the
runtime-level approach.

The exchange is two-phase, eliminating diagonal messages as in [6]:

1. north/south strips of the block's top/bottom ``depth`` interior rows;
2. after both arrive, west/east strips of the *full padded height* —
   the freshly installed north/south halo rows ride along, which is
   what covers the corner dependencies without eight-neighbour traffic.

Numerics remain **bit-identical** to the plain stencil and the
sequential reference (the tests pin this), because every cell still
sees exactly the five-point update on exactly the same values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.apps.stencil.costs import DEFAULT_STENCIL_COSTS, StencilCostModel
from repro.apps.stencil.decomposition import BlockDecomposition
from repro.apps.stencil.driver import StencilResult
from repro.apps.stencil.kernel import make_initial_mesh
from repro.core.chare import Chare
from repro.core.mapping import grid2d_split_mapping
from repro.core.method import entry
from repro.errors import ConfigurationError
from repro.grid.environment import GridEnvironment


def deep_jacobi_phase(padded: np.ndarray, depth: int,
                      apply_fixed) -> None:
    """Advance the padded block ``depth`` steps in place.

    Sub-step ``k`` updates the window that still has valid neighbours —
    one ring narrower each time — so after ``depth`` sub-steps the
    centre interior holds exactly the plain-stencil result.
    ``apply_fixed()`` re-pins the global Dirichlet boundary after every
    sub-step.
    """
    for k in range(depth):
        src = padded[k:padded.shape[0] - k, k:padded.shape[1] - k]
        new = 0.25 * (src[:-2, 1:-1] + src[2:, 1:-1]
                      + src[1:-1, :-2] + src[1:-1, 2:])
        padded[k + 1:padded.shape[0] - k - 1,
               k + 1:padded.shape[1] - k - 1] = new
        apply_fixed()


def redundant_cells(block_rows: int, block_cols: int, depth: int) -> int:
    """Extra cell-updates one phase performs beyond depth x interior.

    The cost of the technique: sub-step k updates a
    ``(rows + 2(depth-1-k)) x (cols + 2(depth-1-k))`` window.
    """
    total = 0
    for k in range(depth):
        ring = depth - 1 - k
        total += ((block_rows + 2 * ring) * (block_cols + 2 * ring)
                  - block_rows * block_cols)
    return total


@dataclass(frozen=True)
class DeepGhostConfig:
    """Run settings shared by all deep-halo blocks."""

    steps: int
    depth: int
    payload: str = "real"
    costs: StencilCostModel = field(
        default_factory=lambda: DEFAULT_STENCIL_COSTS)
    gather_mesh: bool = False

    def __post_init__(self) -> None:
        if self.depth < 1:
            raise ConfigurationError(f"depth must be >= 1: {self.depth}")
        if self.steps < 0 or self.steps % self.depth != 0:
            raise ConfigurationError(
                f"steps ({self.steps}) must be a non-negative multiple "
                f"of depth ({self.depth})")
        if self.payload not in ("real", "modeled"):
            raise ConfigurationError(f"bad payload {self.payload!r}")

    @property
    def phases(self) -> int:
        return self.steps // self.depth


class DeepStencilBlock(Chare):
    """A stencil block with a ``depth``-cell halo, exchanging per phase."""

    def __init__(self, bi: int, bj: int, decomp: BlockDecomposition,
                 config: DeepGhostConfig, initial: Optional[np.ndarray],
                 done_targets: Tuple[Any, Any, Any]) -> None:
        super().__init__()
        self.bi = bi
        self.bj = bj
        self.decomp = decomp
        self.config = config
        self.neighbors = decomp.neighbors(bi, bj)
        self.done_targets = done_targets

        d = config.depth
        h, w = decomp.block_rows, decomp.block_cols
        if h < d or w < d:
            raise ConfigurationError(
                f"depth {d} exceeds block {h}x{w}")
        if config.payload == "real":
            if initial is None or initial.shape != (h, w):
                raise ConfigurationError(
                    f"block ({bi},{bj}) expects a {h}x{w} initial array")
            self.u = np.zeros((h + 2 * d, w + 2 * d), dtype=np.float64)
            self.u[d:d + h, d:d + w] = initial
            self._fixed = self._capture_fixed(initial)
        else:
            self.u = None
            self._fixed = {}

        self.phase = 0
        self._started = False
        self._finished = False
        #: (phase, side) -> strip; "ns-done" gates phase 2 of a phase.
        self._strips: Dict[Tuple[int, str], Any] = {}
        self.completed_at: List[float] = []

    # -- fixed global boundary --------------------------------------------
    #
    # For a block on the mesh edge, the *entire padded row/column* at the
    # boundary's offset lies on the global Dirichlet boundary: its halo
    # portion holds copies of the same-edge neighbours' boundary cells,
    # which must stay pinned during local sub-stepping just like the
    # block's own boundary cells (otherwise, at depth >= 3, corrupted
    # halo copies propagate into the interior).  The pinned values are
    # re-snapshotted after each phase's strips install, since the halo
    # portions refresh every exchange.

    def _capture_fixed(self, interior: np.ndarray) -> Dict[str, int]:
        d = self.config.depth
        h, w = self.decomp.block_rows, self.decomp.block_cols
        fixed: Dict[str, int] = {}
        if self.bi == 0:
            fixed["row0"] = d
        if self.bi == self.decomp.brows - 1:
            fixed["row1"] = d + h - 1
        if self.bj == 0:
            fixed["col0"] = d
        if self.bj == self.decomp.bcols - 1:
            fixed["col1"] = d + w - 1
        return fixed

    def _snapshot_fixed(self) -> Dict[str, np.ndarray]:
        snap = {}
        for key, idx in self._fixed.items():
            if key.startswith("row"):
                snap[key] = self.u[idx, :].copy()
            else:
                snap[key] = self.u[:, idx].copy()
        return snap

    def _make_fixed_applier(self):
        snap = self._snapshot_fixed()

        def apply_fixed() -> None:
            for key, values in snap.items():
                idx = self._fixed[key]
                if key.startswith("row"):
                    self.u[idx, :] = values
                else:
                    self.u[:, idx] = values

        return apply_fixed

    # -- wire sizes -------------------------------------------------------------

    def _ns_bytes(self) -> int:
        return self.config.depth * self.decomp.block_cols * 8 + 64

    def _we_bytes(self) -> int:
        d = self.config.depth
        return d * (self.decomp.block_rows + 2 * d) * 8 + 64

    # -- entry methods -------------------------------------------------------------

    @entry
    def start(self) -> None:
        self._started = True
        if self.config.phases == 0:
            self._finish()
            return
        self._send_ns()
        self._maybe_advance()

    @entry
    def strip(self, phase: int, side: str, data: Any) -> None:
        """A halo strip arrived (phase 1: north/south; phase 2: west/east)."""
        key = (phase, side)
        if key in self._strips:
            raise ConfigurationError(
                f"block ({self.bi},{self.bj}) duplicate strip {key}")
        self._strips[key] = data
        size = self._ns_bytes() if side in ("north", "south") \
            else self._we_bytes()
        self.charge(self.config.costs.ghost_cost(size))
        self._maybe_advance()

    # -- the two-phase exchange engine ------------------------------------------------

    def _ns_sides(self) -> List[str]:
        return [s for s in ("north", "south") if s in self.neighbors]

    def _we_sides(self) -> List[str]:
        return [s for s in ("west", "east") if s in self.neighbors]

    def _maybe_advance(self) -> None:
        if not self._started or self._finished:
            return
        progressed = True
        while progressed:
            progressed = False
            p = self.phase
            ns_ready = all((p, s) in self._strips for s in self._ns_sides())
            we_ready = all((p, s) in self._strips for s in self._we_sides())
            ns_installed = (p, "__ns_installed__") in self._strips
            if ns_ready and not ns_installed:
                self._install_ns(p)
                self._strips[(p, "__ns_installed__")] = True
                self._send_we()
                progressed = True
                continue
            if ns_installed and we_ready:
                self._install_we(p)
                self._compute_phase()
                progressed = not self._finished

    def _send_ns(self) -> None:
        d = self.config.depth
        h, w = self.decomp.block_rows, self.decomp.block_cols
        self.charge(self.config.costs.send_cost(len(self._ns_sides())))
        for side in self._ns_sides():
            if self.config.payload == "real":
                if side == "north":
                    data = self.u[d:2 * d, d:d + w].copy()
                else:
                    data = self.u[h:d + h, d:d + w].copy()
            else:
                data = None
            opposite = "south" if side == "north" else "north"
            self.thisProxy[self.neighbors[side]].strip(
                self.phase, opposite, data, _size=self._ns_bytes(),
                _tag=f"deep-ns p{self.phase}")

    def _install_ns(self, phase: int) -> None:
        d = self.config.depth
        h, w = self.decomp.block_rows, self.decomp.block_cols
        for side in self._ns_sides():
            data = self._strips.pop((phase, side))
            if self.config.payload != "real":
                continue
            if side == "north":
                self.u[0:d, d:d + w] = data
            else:
                self.u[d + h:2 * d + h, d:d + w] = data

    def _send_we(self) -> None:
        """Phase 2: full-height strips (fresh N/S halo rows included)."""
        d = self.config.depth
        w = self.decomp.block_cols
        self.charge(self.config.costs.send_cost(len(self._we_sides())))
        for side in self._we_sides():
            if self.config.payload == "real":
                if side == "west":
                    data = self.u[:, d:2 * d].copy()
                else:
                    data = self.u[:, w:d + w].copy()
            else:
                data = None
            opposite = "east" if side == "west" else "west"
            self.thisProxy[self.neighbors[side]].strip(
                self.phase, opposite, data, _size=self._we_bytes(),
                _tag=f"deep-we p{self.phase}")

    def _install_we(self, phase: int) -> None:
        d = self.config.depth
        w = self.decomp.block_cols
        for side in self._we_sides():
            data = self._strips.pop((phase, side))
            if self.config.payload != "real":
                continue
            if side == "west":
                self.u[:, 0:d] = data
            else:
                self.u[:, d + w:2 * d + w] = data
        self._strips.pop((phase, "__ns_installed__"), None)

    def _compute_phase(self) -> None:
        cfg = self.config
        d = cfg.depth
        h, w = self.decomp.block_rows, self.decomp.block_cols
        if cfg.payload == "real":
            deep_jacobi_phase(self.u, d, self._make_fixed_applier())
        cells = d * h * w + redundant_cells(h, w, d)
        # One cache factor for the whole phase: the padded working set.
        per_cell = (cfg.costs.per_cell
                    * cfg.costs.cache.factor(
                        2 * (h + 2 * d) * (w + 2 * d) * 8))
        self.charge(per_cell * cells)

        self.phase += 1
        now = self.now
        self.completed_at.extend([now] * d)   # d steps land together
        if self.phase >= cfg.phases:
            self._finish()
        else:
            self._send_ns()

    def _finish(self) -> None:
        self._finished = True
        times_cb, checksum_cb, mesh_cb = self.done_targets
        self.contribute(np.array(self.completed_at, dtype=np.float64),
                        "max", times_cb)
        d = self.config.depth
        h, w = self.decomp.block_rows, self.decomp.block_cols
        if self.config.payload == "real":
            self.contribute(float(self.u[d:d + h, d:d + w].sum()), "sum",
                            checksum_cb)
        else:
            self.contribute(0.0, "sum", checksum_cb)
        if self.config.gather_mesh:
            payload = (self.u[d:d + h, d:d + w].copy()
                       if self.config.payload == "real" else None)
            self.contribute(payload, "concat", mesh_cb)

    def pack_size(self) -> int:
        return 512 if self.u is None else int(self.u.nbytes) + 512


class DeepGhostStencilApp:
    """Driver for the ghost-zone-expansion stencil (ablation baseline)."""

    def __init__(self, env: GridEnvironment,
                 mesh: Tuple[int, int] = (2048, 2048), objects: int = 64,
                 depth: int = 2, payload: str = "real",
                 costs: Optional[StencilCostModel] = None,
                 mapping=None, seed: int = 0,
                 gather_mesh: bool = False) -> None:
        self.env = env
        self.decomp = BlockDecomposition.regular(mesh, objects)
        self.depth = depth
        self.payload = payload
        self.costs = costs
        self.mapping = mapping
        self.seed = seed
        self.gather_mesh = gather_mesh
        self._results: Dict[str, object] = {}

    def _on_times(self, times) -> None:
        self._results["times"] = times

    def _on_checksum(self, value) -> None:
        self._results["checksum"] = value

    def _on_mesh(self, pairs) -> None:
        self._results["mesh_pairs"] = pairs

    def run(self, steps: int, warmup: Optional[int] = None) -> StencilResult:
        if warmup is None:
            # Steps complete d at a time, so step_times is a staircase;
            # the steady-state window must start exactly at a phase
            # boundary or the slope is biased.  Skip the first phase
            # entirely when at least three phases exist.
            phases = steps // max(self.depth, 1)
            warmup = (2 * self.depth - 1) if phases >= 3 \
                else max(self.depth - 1, 0)
        cfg_kwargs = {"steps": steps, "depth": self.depth,
                      "payload": self.payload,
                      "gather_mesh": self.gather_mesh}
        if self.costs is not None:
            cfg_kwargs["costs"] = self.costs
        config = DeepGhostConfig(**cfg_kwargs)

        decomp = self.decomp
        initial = (make_initial_mesh(decomp.mesh_rows, decomp.mesh_cols,
                                     self.seed)
                   if self.payload == "real" else None)
        targets = (self._on_times, self._on_checksum, self._on_mesh)

        def args_of(idx):
            bi, bj = idx
            block_init = None
            if initial is not None:
                rs, cs = decomp.interior_slices(bi, bj)
                block_init = initial[rs, cs].copy()
            return ((bi, bj, decomp, config, block_init, targets), {})

        mapping = self.mapping or grid2d_split_mapping(
            decomp.brows, decomp.bcols, self.env.topology)
        blocks = self.env.runtime.create_array(
            DeepStencilBlock, decomp.indices(), mapping, args_of=args_of)

        t0 = self.env.now
        blocks.start()
        self.env.run()
        if "times" not in self._results:
            raise ConfigurationError("deep-ghost run never completed")
        times = np.asarray(self._results["times"]) - t0

        final_mesh = None
        if self.gather_mesh and self.payload == "real":
            final_mesh = np.zeros((decomp.mesh_rows, decomp.mesh_cols))
            for (bi, bj), block in self._results.get("mesh_pairs", []):
                rs, cs = decomp.interior_slices(bi, bj)
                final_mesh[rs, cs] = block

        return StencilResult(
            step_times=times,
            checksum=float(self._results.get("checksum", 0.0)),
            final_mesh=final_mesh, makespan=self.env.now - t0,
            warmup=warmup)
