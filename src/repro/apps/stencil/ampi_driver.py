"""The same five-point stencil written as an AMPI (MPI) program.

Paper §2.1/§6: "through the use of Adaptive MPI, any MPI application can
take advantage of our techniques."  This driver demonstrates it: the
rank program below is plain MPI style — isend/irecv/waitall per step —
with **no latency-tolerance logic whatsoever**; masking comes entirely
from running more ranks than PEs under the message-driven scheduler.

The numerics are identical to the chare version (same decomposition,
same kernel), so the reference-equality tests apply to both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.ampi.world import ampi_run
from repro.apps.stencil.chares import PAYLOAD_MODES
from repro.apps.stencil.costs import DEFAULT_STENCIL_COSTS, StencilCostModel
from repro.apps.stencil.decomposition import OPPOSITE, BlockDecomposition
from repro.apps.stencil.driver import StencilResult
from repro.apps.stencil.kernel import jacobi_step, make_initial_mesh
from repro.core.mapping import grid2d_split_mapping
from repro.errors import ConfigurationError
from repro.grid.environment import GridEnvironment

#: Tag space: ghost messages use the direction's position in this tuple.
_SIDES = ("north", "south", "west", "east")


def stencil_rank_program(mpi, decomp: BlockDecomposition, steps: int,
                         payload: str, costs: StencilCostModel,
                         initial_blocks: Optional[Dict]):
    """One MPI rank updating one mesh block for *steps* iterations.

    Returns ``(completion_times, interior_sum)``.
    """
    bi, bj = divmod(mpi.rank, decomp.bcols)
    neighbors = decomp.neighbors(bi, bj)

    def rank_of(block) -> int:
        return block[0] * decomp.bcols + block[1]

    u = None
    fixed = {}
    if payload == "real":
        interior = initial_blocks[(bi, bj)]
        h, w = decomp.block_rows, decomp.block_cols
        u = np.zeros((h + 2, w + 2), dtype=np.float64)
        u[1:-1, 1:-1] = interior
        if bi == 0:
            fixed["north"] = interior[0, :].copy()
        if bi == decomp.brows - 1:
            fixed["south"] = interior[-1, :].copy()
        if bj == 0:
            fixed["west"] = interior[:, 0].copy()
        if bj == decomp.bcols - 1:
            fixed["east"] = interior[:, -1].copy()

    def boundary(side: str):
        if payload != "real":
            return None
        inner = u[1:-1, 1:-1]
        return {"north": inner[0, :], "south": inner[-1, :],
                "west": inner[:, 0], "east": inner[:, -1]}[side].copy()

    times: List[float] = []
    for _step in range(steps):
        # Post receives first (MPI best practice), then sends.
        recvs = [(side, mpi.irecv(source=rank_of(nbr),
                                  tag=_SIDES.index(side)))
                 for side, nbr in neighbors.items()]
        mpi.charge(costs.send_cost(len(neighbors)))
        for side, nbr in neighbors.items():
            mpi.isend(boundary(side), dest=rank_of(nbr),
                      tag=_SIDES.index(OPPOSITE[side]),
                      size=decomp.ghost_bytes(side) + 64)
        ghosts = yield mpi.waitall([req for _s, req in recvs])
        for (side, _req), vec in zip(recvs, ghosts):
            mpi.charge(costs.ghost_cost(decomp.ghost_bytes(side)))
            if payload == "real":
                if side == "north":
                    u[0, 1:-1] = vec
                elif side == "south":
                    u[-1, 1:-1] = vec
                elif side == "west":
                    u[1:-1, 0] = vec
                else:
                    u[1:-1, -1] = vec

        if payload == "real":
            u[1:-1, 1:-1] = jacobi_step(u)
            inner = u[1:-1, 1:-1]
            for side, values in fixed.items():
                if side == "north":
                    inner[0, :] = values
                elif side == "south":
                    inner[-1, :] = values
                elif side == "west":
                    inner[:, 0] = values
                else:
                    inner[:, -1] = values
        mpi.charge(costs.compute_cost(decomp.block_rows, decomp.block_cols))
        times.append(mpi.now)

    interior_sum = float(u[1:-1, 1:-1].sum()) if payload == "real" else 0.0
    return (times, interior_sum)


@dataclass
class AmpiStencilApp:
    """AMPI-flavoured stencil experiment (ranks = objects)."""

    env: GridEnvironment
    mesh: Tuple[int, int] = (2048, 2048)
    ranks: int = 64
    payload: str = "real"
    costs: StencilCostModel = DEFAULT_STENCIL_COSTS
    seed: int = 0

    def run(self, steps: int, warmup: Optional[int] = None) -> StencilResult:
        if self.payload not in PAYLOAD_MODES:
            raise ConfigurationError(f"bad payload {self.payload!r}")
        if steps <= 0:
            raise ConfigurationError(f"steps must be positive: {steps}")
        if warmup is None:
            warmup = min(max(steps // 5, 1), 5)

        decomp = BlockDecomposition.regular(self.mesh, self.ranks)
        initial_blocks = None
        if self.payload == "real":
            full = make_initial_mesh(decomp.mesh_rows, decomp.mesh_cols,
                                     self.seed)
            initial_blocks = {}
            for bi, bj in decomp.indices():
                rs, cs = decomp.interior_slices(bi, bj)
                initial_blocks[(bi, bj)] = full[rs, cs].copy()

        # Place rank r where the chare mapping would put block r.
        block_map = grid2d_split_mapping(
            decomp.brows, decomp.bcols, self.env.topology).assign(
                decomp.indices(), self.env.topology)
        rank_map = {(bi * decomp.bcols + bj,): pe
                    for (bi, bj), pe in block_map.items()}

        t0 = self.env.now
        world = ampi_run(
            self.env, stencil_rank_program, num_ranks=self.ranks,
            mapping=rank_map,
            program_args=(decomp, steps, self.payload, self.costs,
                          initial_blocks))
        results = world.results_in_rank_order()

        per_rank_times = np.array([r[0] for r in results])  # (ranks, steps)
        step_times = per_rank_times.max(axis=0) - t0
        checksum = float(sum(r[1] for r in results))
        return StencilResult(step_times=step_times, checksum=checksum,
                             final_mesh=None,
                             makespan=self.env.now - t0, warmup=warmup)
