"""Five-point stencil application (paper §4, §5.2).

A 2048x2048 Jacobi relaxation decomposed into 4-1024 chares (or AMPI
ranks), the paper's vehicle for sweeping the degree of virtualization
against injected wide-area latency.
"""

from repro.apps.stencil.ampi_driver import AmpiStencilApp, stencil_rank_program
from repro.apps.stencil.chares import StencilBlock, StencilRunConfig
from repro.apps.stencil.deep_ghost import (
    DeepGhostConfig,
    DeepGhostStencilApp,
    DeepStencilBlock,
    deep_jacobi_phase,
    redundant_cells,
)
from repro.apps.stencil.costs import DEFAULT_STENCIL_COSTS, StencilCostModel
from repro.apps.stencil.decomposition import (
    DIRECTIONS,
    OPPOSITE,
    BlockDecomposition,
    factor_grid,
)
from repro.apps.stencil.driver import StencilApp, StencilResult, run_stencil
from repro.apps.stencil.kernel import (
    jacobi_step,
    make_initial_mesh,
    residual,
)
from repro.apps.stencil.reference import checksum, run_reference

__all__ = [
    "DeepGhostStencilApp",
    "DeepGhostConfig",
    "DeepStencilBlock",
    "deep_jacobi_phase",
    "redundant_cells",
    "StencilApp",
    "StencilResult",
    "run_stencil",
    "AmpiStencilApp",
    "stencil_rank_program",
    "StencilBlock",
    "StencilRunConfig",
    "StencilCostModel",
    "DEFAULT_STENCIL_COSTS",
    "BlockDecomposition",
    "factor_grid",
    "DIRECTIONS",
    "OPPOSITE",
    "jacobi_step",
    "residual",
    "make_initial_mesh",
    "run_reference",
    "checksum",
]
