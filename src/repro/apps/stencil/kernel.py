"""The five-point Jacobi update kernel (vectorized NumPy).

Paper §4: "a multidimensional mesh is repeatedly updated by replacing
the value at each point with some function of the values at a small,
fixed number of neighboring points ... the ones directly above and below
as well as to the left and right of a given cell."

The concrete function is the classic Jacobi relaxation for Laplace's
equation: each interior point becomes the mean of its four neighbors.
Blocks carry one ghost layer; the global boundary is Dirichlet (held at
its initial values).
"""

from __future__ import annotations

import numpy as np


def jacobi_step(padded: np.ndarray) -> np.ndarray:
    """One Jacobi update of the interior of a ghost-padded block.

    Parameters
    ----------
    padded:
        ``(h + 2, w + 2)`` float64 array: interior plus one ghost layer
        already filled with the neighbors' boundary values.

    Returns
    -------
    numpy.ndarray
        The ``(h, w)`` updated interior (a new array; the input is not
        modified — Jacobi needs the previous iterate intact).
    """
    if padded.ndim != 2 or padded.shape[0] < 3 or padded.shape[1] < 3:
        raise ValueError(f"padded block too small: {padded.shape}")
    return 0.25 * (padded[:-2, 1:-1] + padded[2:, 1:-1]
                   + padded[1:-1, :-2] + padded[1:-1, 2:])


def jacobi_step_into(padded: np.ndarray, out: np.ndarray) -> np.ndarray:
    """:func:`jacobi_step` writing into a caller-owned ``(h, w)`` buffer.

    Bit-identical to :func:`jacobi_step` — the four neighbor planes are
    accumulated in the same ``((north + south) + west) + east`` order and
    scaled last — but allocation-free: the three temporaries the
    expression form creates per call (two intermediate sums and the
    result) collapse into in-place updates of *out*.  On the per-block
    hot path of a big run this is where the numpy kernel time goes, so
    the steady-state loop uses this entry point with a preallocated
    scratch buffer.
    """
    if padded.ndim != 2 or padded.shape[0] < 3 or padded.shape[1] < 3:
        raise ValueError(f"padded block too small: {padded.shape}")
    if out.shape != (padded.shape[0] - 2, padded.shape[1] - 2):
        raise ValueError(
            f"output shape {out.shape} does not match interior "
            f"{(padded.shape[0] - 2, padded.shape[1] - 2)}")
    np.add(padded[:-2, 1:-1], padded[2:, 1:-1], out=out)
    out += padded[1:-1, :-2]
    out += padded[1:-1, 2:]
    out *= 0.25
    return out


def residual(before: np.ndarray, after: np.ndarray) -> float:
    """Max-norm change between two iterates (convergence monitor)."""
    if before.shape != after.shape:
        raise ValueError(
            f"shape mismatch {before.shape} vs {after.shape}")
    return float(np.max(np.abs(after - before)))


def flops_per_cell() -> int:
    """Arithmetic operations per cell per update (3 adds + 1 multiply)."""
    return 4


def make_initial_mesh(rows: int, cols: int, seed: int = 0) -> np.ndarray:
    """The experiments' deterministic initial condition.

    A hot west wall (1.0), cold other walls (0.0), and a seeded random
    interior — enough structure that indexing errors show up instantly
    in the reference comparison, with no symmetric self-cancellation.
    """
    rng = np.random.default_rng(seed)
    mesh = rng.random((rows, cols))
    mesh[0, :] = 0.0
    mesh[-1, :] = 0.0
    mesh[:, -1] = 0.0
    mesh[:, 0] = 1.0
    return mesh
