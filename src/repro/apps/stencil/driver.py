"""Stencil application driver: build, run, measure.

:class:`StencilApp` assembles the chare array on a
:class:`~repro.grid.environment.GridEnvironment`, runs it, and returns a
:class:`StencilResult` carrying the per-step completion times the paper's
Figure 3 / Table 1 report (as "Time (ms/step)").

Steady-state reporting: the first ``warmup`` steps are discarded (the
pipeline is filling: blocks start staggered as boot broadcasts arrive)
and the remaining steps' completion-time differences are averaged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.apps.stencil.chares import StencilBlock, StencilRunConfig
from repro.apps.stencil.costs import StencilCostModel
from repro.apps.stencil.decomposition import BlockDecomposition
from repro.apps.stencil.kernel import make_initial_mesh
from repro.core.mapping import grid2d_split_mapping
from repro.errors import ConfigurationError
from repro.grid.environment import GridEnvironment
from repro.units import to_ms


@dataclass
class StencilResult:
    """Outcome of one stencil run."""

    #: Virtual completion time of each step (max over blocks), seconds.
    step_times: np.ndarray
    #: Sum over the final mesh interior (0.0 in modeled-payload runs).
    checksum: float
    #: Reassembled final mesh (only when ``gather_mesh=True``).
    final_mesh: Optional[np.ndarray]
    #: Total virtual time of the run, seconds.
    makespan: float
    #: Steps discarded as pipeline warm-up in the per-step statistic.
    warmup: int

    @property
    def steps(self) -> int:
        return len(self.step_times)

    @property
    def time_per_step(self) -> float:
        """Steady-state seconds per step (paper's reported metric)."""
        if self.steps == 0:
            return 0.0
        if self.steps <= self.warmup + 1:
            return self.step_times[-1] / max(self.steps, 1)
        window = self.step_times[self.warmup:]
        return float(window[-1] - window[0]) / (len(window) - 1)

    @property
    def time_per_step_ms(self) -> float:
        return to_ms(self.time_per_step)


class StencilApp:
    """The paper's five-point stencil experiment on one environment.

    Parameters
    ----------
    env:
        Simulated grid (artificial-latency, TeraGrid, or single cluster).
    mesh:
        Mesh shape; the paper uses ``(2048, 2048)``.
    objects:
        Degree of virtualization — total chare count (4..1024).
    payload:
        ``"real"`` performs the numerics; ``"modeled"`` reproduces the
        identical event flow without arithmetic (for large sweeps).
    costs:
        Cost-model override (defaults to the Itanium-2 calibration).
    mapping:
        Placement override; defaults to the paper's cluster-split block
        mapping along mesh columns.
    seed:
        Initial-condition seed (real payload only).
    kernel:
        Jacobi arithmetic flavor (``"numpy"`` block kernel or
        ``"percell"`` scalar reference; real payload only).
    target_wrapper:
        Optional callable applied to each reduction callback before it
        is handed to the blocks.  The sharded runner uses this to swap
        the app's bound methods for picklable stand-ins that cross
        process boundaries inside ``ReductionMsg`` payloads; serial runs
        leave it ``None`` and the callbacks travel as-is.
    """

    def __init__(self, env: GridEnvironment, mesh: Tuple[int, int] = (2048, 2048),
                 objects: int = 64, payload: str = "real",
                 costs: Optional[StencilCostModel] = None,
                 mapping=None, seed: int = 0,
                 gather_mesh: bool = False, kernel: str = "numpy",
                 target_wrapper=None) -> None:
        self.env = env
        self.decomp = BlockDecomposition.regular(mesh, objects)
        self.payload = payload
        self.costs = costs
        self.mapping = mapping
        self.seed = seed
        self.gather_mesh = gather_mesh
        self.kernel = kernel
        self.target_wrapper = target_wrapper
        self._results: Dict[str, object] = {}
        self._t0 = 0.0
        self._warmup = 0

    # -- reduction callbacks -------------------------------------------------

    def _on_times(self, times: np.ndarray) -> None:
        self._results["times"] = times

    def _on_checksum(self, value: float) -> None:
        self._results["checksum"] = value

    def _on_mesh(self, pairs: List) -> None:
        self._results["mesh_pairs"] = pairs

    # -- the run ---------------------------------------------------------------

    def launch(self, steps: int, warmup: Optional[int] = None) -> None:
        """Build the chare array and send the start broadcast.

        The run itself is driven by the caller — ``env.run()`` serially,
        or the sharded sync loop — and :meth:`collect` then assembles the
        measurements.  :meth:`run` chains all three for the common case.
        """
        if steps <= 0:
            raise ConfigurationError(f"steps must be positive, got {steps}")
        if warmup is None:
            warmup = min(max(steps // 5, 1), 5)
        if warmup >= steps:
            raise ConfigurationError(
                f"warmup {warmup} must be < steps {steps}")

        cfg_kwargs = {"steps": steps, "payload": self.payload,
                      "gather_mesh": self.gather_mesh,
                      "kernel": self.kernel}
        if self.costs is not None:
            cfg_kwargs["costs"] = self.costs
        config = StencilRunConfig(**cfg_kwargs)

        initial = (make_initial_mesh(self.decomp.mesh_rows,
                                     self.decomp.mesh_cols, self.seed)
                   if self.payload == "real" else None)

        decomp = self.decomp
        targets = (self._on_times, self._on_checksum, self._on_mesh)
        if self.target_wrapper is not None:
            targets = tuple(self.target_wrapper(cb) for cb in targets)

        def args_of(idx):
            bi, bj = idx
            block_init = None
            if initial is not None:
                rs, cs = decomp.interior_slices(bi, bj)
                block_init = initial[rs, cs].copy()
            return ((bi, bj, decomp, config, block_init, targets), {})

        mapping = self.mapping
        if mapping is None:
            mapping = grid2d_split_mapping(decomp.brows, decomp.bcols,
                                           self.env.topology)
        blocks = self.env.runtime.create_array(
            StencilBlock, decomp.indices(), mapping, args_of=args_of)

        self._t0 = self.env.now
        self._warmup = warmup
        blocks.start()

    def collect(self) -> StencilResult:
        """Assemble the :class:`StencilResult` after the run completed."""
        if "times" not in self._results:
            raise ConfigurationError(
                "run ended without completing (deadlock or zero blocks?)")
        times = (np.asarray(self._results["times"], dtype=np.float64)
                 - self._t0)

        final_mesh = None
        if self.gather_mesh and self.payload == "real":
            final_mesh = self._reassemble(self._results.get("mesh_pairs", []))

        return StencilResult(
            step_times=times,
            checksum=float(self._results.get("checksum", 0.0)),
            final_mesh=final_mesh,
            makespan=self.env.now - self._t0,
            warmup=self._warmup,
        )

    def run(self, steps: int, warmup: Optional[int] = None) -> StencilResult:
        """Execute *steps* Jacobi iterations; returns the measurements."""
        self.launch(steps, warmup=warmup)
        self.env.run()
        return self.collect()

    def _reassemble(self, pairs: List) -> np.ndarray:
        mesh = np.zeros((self.decomp.mesh_rows, self.decomp.mesh_cols))
        for (bi, bj), block in pairs:
            rs, cs = self.decomp.interior_slices(bi, bj)
            mesh[rs, cs] = block
        return mesh


def run_stencil(env: GridEnvironment, mesh: Tuple[int, int], objects: int,
                steps: int, payload: str = "modeled",
                costs: Optional[StencilCostModel] = None,
                warmup: Optional[int] = None,
                kernel: str = "numpy") -> StencilResult:
    """One-call convenience wrapper used by the benchmark sweeps."""
    app = StencilApp(env, mesh=mesh, objects=objects, payload=payload,
                     costs=costs, kernel=kernel)
    return app.run(steps, warmup=warmup)
