"""Calibrated cost model for the stencil application.

Targets the paper's 1.5 GHz Itanium-2 nodes.  The calibration anchors
(derived in :mod:`repro.bench.calibration`, summarized here):

* Table 1, 2 PEs / 16 objects: 75.05 ms/step with 2 M cells/PE and the
  512x512 working set (~2 MiB x 2 arrays) partially in L3
  -> ~35 ns/cell effective base rate.
* Table 1, 2 PEs / 4 objects: 85.77 ms/step — the same cells with an
  8 MiB x 2 working set spilling L3 -> ~16% DRAM penalty (the §5.2
  "improved cache performance because of smaller grainsize" anomaly).
* Per-ghost handling of a few microseconds plus ~2 ns/byte copy, the
  scale of a memcpy plus scheduler dispatch on that hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.costs import CacheHierarchy
from repro.errors import CalibrationError


@dataclass(frozen=True)
class StencilCostModel:
    """Virtual-time costs of the stencil entry methods.

    Parameters
    ----------
    per_cell:
        Base seconds per cell update with a cache-resident working set.
    cache:
        Cache model supplying the working-set multiplier.
    ghost_fixed:
        Fixed seconds to unpack/copy one arriving ghost vector.
    ghost_per_byte:
        Additional per-byte copy cost of a ghost vector.
    send_fixed:
        Per-message packing cost charged when posting a ghost send.
    """

    per_cell: float = 35e-9
    cache: CacheHierarchy = field(default_factory=CacheHierarchy)
    ghost_fixed: float = 12e-6
    ghost_per_byte: float = 2e-9
    send_fixed: float = 8e-6

    def __post_init__(self) -> None:
        if self.per_cell <= 0:
            raise CalibrationError("per_cell must be positive")
        for name in ("ghost_fixed", "ghost_per_byte", "send_fixed"):
            if getattr(self, name) < 0:
                raise CalibrationError(f"{name} must be >= 0")

    def compute_cost(self, block_rows: int, block_cols: int) -> float:
        """One Jacobi update of a ``rows x cols`` block."""
        cells = block_rows * block_cols
        working_set = 2 * (block_rows + 2) * (block_cols + 2) * 8
        return self.per_cell * self.cache.factor(working_set) * cells

    def ghost_cost(self, ghost_bytes: int) -> float:
        """Receiving + copying one ghost vector into the halo."""
        return self.ghost_fixed + self.ghost_per_byte * ghost_bytes

    def send_cost(self, num_neighbors: int) -> float:
        """Packing ghost vectors for all neighbors after an update."""
        return self.send_fixed * num_neighbors


#: The calibration used by the paper-reproduction benchmarks.
DEFAULT_STENCIL_COSTS = StencilCostModel()
