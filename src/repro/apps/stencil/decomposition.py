"""Block decomposition of the stencil mesh onto chares.

Paper §4: "The problem is decomposed using virtualization by dividing
the cells within the mesh evenly among a specified number of objects.
For example, for a 2048x2048 mesh divided among 64 objects, 8 objects
are mapped along each axis of the mesh.  Accordingly, each object has a
256x256 square section of the mesh to operate upon.  During each time
step, each object communicates values for a 256x1 vector of cells to its
appropriate neighbor."

:class:`BlockDecomposition` is pure geometry: block shapes, index
arithmetic, neighbor relationships, ghost-vector sizes.  Both the chare
and AMPI stencil implementations build on it, as do the tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import ConfigurationError

#: The four stencil directions and their inverses.
DIRECTIONS = ("north", "south", "west", "east")
OPPOSITE: Dict[str, str] = {
    "north": "south", "south": "north", "west": "east", "east": "west",
}


def factor_grid(objects: int) -> Tuple[int, int]:
    """Factor an object count into the most-square ``(rows, cols)`` grid.

    Perfect squares (the paper's 4, 16, 64, 256, 1024) factor as
    ``(sqrt, sqrt)``; other counts get the balanced factor pair closest
    to square, e.g. 32 -> (4, 8).
    """
    if objects <= 0:
        raise ConfigurationError(f"need a positive object count: {objects}")
    best = (1, objects)
    for rows in range(1, int(math.isqrt(objects)) + 1):
        if objects % rows == 0:
            best = (rows, objects // rows)
    return best


@dataclass(frozen=True)
class BlockDecomposition:
    """Geometry of an ``ny x nx`` mesh split into ``brows x bcols`` blocks.

    Indices are ``(bi, bj)`` — block row, block column.  The mesh must
    divide evenly (the paper's mesh/object combinations all do).
    """

    mesh_rows: int
    mesh_cols: int
    brows: int
    bcols: int

    @classmethod
    def regular(cls, mesh: Tuple[int, int], objects: int
                ) -> "BlockDecomposition":
        """Decompose *mesh* into *objects* equal blocks (paper style)."""
        rows, cols = mesh
        brows, bcols = factor_grid(objects)
        return cls(rows, cols, brows, bcols)

    def __post_init__(self) -> None:
        if self.mesh_rows <= 0 or self.mesh_cols <= 0:
            raise ConfigurationError(
                f"bad mesh {self.mesh_rows}x{self.mesh_cols}")
        if self.brows <= 0 or self.bcols <= 0:
            raise ConfigurationError(
                f"bad block grid {self.brows}x{self.bcols}")
        if self.mesh_rows % self.brows or self.mesh_cols % self.bcols:
            raise ConfigurationError(
                f"mesh {self.mesh_rows}x{self.mesh_cols} does not divide "
                f"into a {self.brows}x{self.bcols} block grid")

    # -- shapes ------------------------------------------------------------

    @property
    def num_blocks(self) -> int:
        return self.brows * self.bcols

    @property
    def block_rows(self) -> int:
        """Interior rows per block."""
        return self.mesh_rows // self.brows

    @property
    def block_cols(self) -> int:
        """Interior columns per block."""
        return self.mesh_cols // self.bcols

    @property
    def cells_per_block(self) -> int:
        return self.block_rows * self.block_cols

    def ghost_bytes(self, direction: str) -> int:
        """Wire size of one ghost vector (float64 cells)."""
        if direction in ("north", "south"):
            return self.block_cols * 8
        if direction in ("west", "east"):
            return self.block_rows * 8
        raise ConfigurationError(f"unknown direction {direction!r}")

    def working_set_bytes(self) -> int:
        """Bytes one block touches per update (two padded float64 arrays)."""
        padded = (self.block_rows + 2) * (self.block_cols + 2)
        return 2 * padded * 8

    # -- index arithmetic --------------------------------------------------------

    def indices(self) -> List[Tuple[int, int]]:
        """All block indices in row-major order."""
        return [(bi, bj) for bi in range(self.brows)
                for bj in range(self.bcols)]

    def interior_slices(self, bi: int, bj: int) -> Tuple[slice, slice]:
        """Mesh slices covered by block ``(bi, bj)``."""
        self._check_block(bi, bj)
        r0 = bi * self.block_rows
        c0 = bj * self.block_cols
        return (slice(r0, r0 + self.block_rows),
                slice(c0, c0 + self.block_cols))

    def neighbors(self, bi: int, bj: int) -> Dict[str, Tuple[int, int]]:
        """Existing neighbors of a block, keyed by direction.

        The global mesh boundary is fixed (Dirichlet), so edge blocks
        simply have fewer neighbors — and fewer messages, like the paper.
        """
        self._check_block(bi, bj)
        out: Dict[str, Tuple[int, int]] = {}
        if bi > 0:
            out["north"] = (bi - 1, bj)
        if bi < self.brows - 1:
            out["south"] = (bi + 1, bj)
        if bj > 0:
            out["west"] = (bi, bj - 1)
        if bj < self.bcols - 1:
            out["east"] = (bi, bj + 1)
        return out

    def _check_block(self, bi: int, bj: int) -> None:
        if not (0 <= bi < self.brows and 0 <= bj < self.bcols):
            raise ConfigurationError(
                f"block ({bi}, {bj}) outside {self.brows}x{self.bcols}")

    def describe(self) -> str:
        return (f"{self.mesh_rows}x{self.mesh_cols} mesh as "
                f"{self.brows}x{self.bcols} blocks of "
                f"{self.block_rows}x{self.block_cols}")
