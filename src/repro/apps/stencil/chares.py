"""The stencil block chare.

Each :class:`StencilBlock` owns one rectangular section of the mesh plus
a one-cell ghost halo.  Per time step it

1. sends its boundary vectors to its (up to four) neighbors,
2. waits — *message-driven*, not blocking the PE — for the neighbors'
   ghost vectors tagged with the current step,
3. applies the Jacobi update, charges the modeled compute cost, and
   moves on.

Because a block only depends on its own neighbors, blocks on one PE
advance independently; while a block adjoining the cluster seam waits
out the WAN latency, the PE executes its other blocks — the paper's §4
mechanism, observable directly in the traces.

A neighbor can run at most one step ahead (it needs our ghosts to go
further), so at most two steps' ghosts are ever buffered.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.apps.stencil.costs import DEFAULT_STENCIL_COSTS, StencilCostModel
from repro.apps.stencil.decomposition import OPPOSITE, BlockDecomposition
from repro.apps.stencil.kernel import jacobi_step_into
from repro.apps.stencil.reference import jacobi_step_percell
from repro.core.chare import Chare
from repro.core.ids import ChareID
from repro.core.method import entry
from repro.errors import ConfigurationError

#: Payload modes: "real" moves and updates actual numbers; "modeled"
#: skips the arithmetic but keeps every message, size and cost identical.
PAYLOAD_MODES = ("real", "modeled")

#: Kernel flavors: "numpy" runs the vectorized block kernel into a
#: preallocated scratch buffer; "percell" runs the scalar per-cell
#: reference arithmetic (bit-identical values, orders of magnitude
#: slower — the baseline the kernel speedup is measured against).
KERNEL_MODES = ("numpy", "percell")


@dataclass(frozen=True)
class StencilRunConfig:
    """Per-run settings shared by every block."""

    steps: int
    payload: str = "real"
    costs: StencilCostModel = field(default_factory=lambda: DEFAULT_STENCIL_COSTS)
    #: Gather the final interiors back to the driver (validation runs).
    gather_mesh: bool = False
    #: Which implementation performs the Jacobi arithmetic (real payload
    #: only; virtual-time cost always comes from ``costs``).
    kernel: str = "numpy"

    def __post_init__(self) -> None:
        if self.steps < 0:
            raise ConfigurationError(f"negative steps {self.steps}")
        if self.payload not in PAYLOAD_MODES:
            raise ConfigurationError(
                f"payload must be one of {PAYLOAD_MODES}, got {self.payload!r}")
        if self.kernel not in KERNEL_MODES:
            raise ConfigurationError(
                f"kernel must be one of {KERNEL_MODES}, got {self.kernel!r}")


class StencilBlock(Chare):
    """One mesh block of the five-point stencil decomposition."""

    def __init__(self, bi: int, bj: int, decomp: BlockDecomposition,
                 config: StencilRunConfig, initial: Optional[np.ndarray],
                 done_targets: Tuple[Any, Any, Any]) -> None:
        super().__init__()
        self.bi = bi
        self.bj = bj
        self.decomp = decomp
        self.config = config
        self.neighbors = decomp.neighbors(bi, bj)
        self.done_targets = done_targets  # (times_cb, checksum_cb, mesh_cb)
        #: Precomputed per-neighbor send plan (side, neighbor index,
        #: opposite side, wire bytes): plain data computed once instead
        #: of a proxy walk + ghost_bytes call per send per step.
        self._ghost_plan = [
            (side, nbr, OPPOSITE[side], decomp.ghost_bytes(side) + 64)
            for side, nbr in self.neighbors.items()
        ]

        h, w = decomp.block_rows, decomp.block_cols
        if config.payload == "real":
            if initial is None or initial.shape != (h, w):
                raise ConfigurationError(
                    f"block ({bi},{bj}) expects a {h}x{w} initial array")
            self.u = np.zeros((h + 2, w + 2), dtype=np.float64)
            self.u[1:-1, 1:-1] = initial
            self._fixed = self._capture_fixed_boundary()
            #: Reused per-step output buffer for the in-place kernel.
            self._scratch = np.empty((h, w), dtype=np.float64)
        else:
            self.u = None
            self._fixed = {}
            self._scratch = None

        self.step = 0
        self._started = False
        self._ghost_buf: Dict[Tuple[int, str], Any] = {}
        self.completed_at: List[float] = []
        self._finished = False

    # -- fixed (Dirichlet) global boundary ----------------------------------

    def _capture_fixed_boundary(self) -> Dict[str, np.ndarray]:
        """Snapshot the mesh-boundary cells this block owns (never updated)."""
        fixed: Dict[str, np.ndarray] = {}
        interior = self.u[1:-1, 1:-1]
        if self.bi == 0:
            fixed["north"] = interior[0, :].copy()
        if self.bi == self.decomp.brows - 1:
            fixed["south"] = interior[-1, :].copy()
        if self.bj == 0:
            fixed["west"] = interior[:, 0].copy()
        if self.bj == self.decomp.bcols - 1:
            fixed["east"] = interior[:, -1].copy()
        return fixed

    def _reapply_fixed_boundary(self) -> None:
        interior = self.u[1:-1, 1:-1]
        for side, values in self._fixed.items():
            if side == "north":
                interior[0, :] = values
            elif side == "south":
                interior[-1, :] = values
            elif side == "west":
                interior[:, 0] = values
            else:
                interior[:, -1] = values

    # -- entry methods ------------------------------------------------------------

    @entry
    def start(self) -> None:
        """Kick off the run: publish step-0 boundaries (or finish).

        Neighbors may boot earlier (the start broadcast arrives
        staggered) and their step-0 ghosts may already be buffered; a
        block must not consume them — let alone advance — before its own
        start has published its step-0 boundaries, or it would later
        re-send under a stale step tag.  ``_drain_ready_steps`` is
        therefore gated on ``_started``.
        """
        self._started = True
        if self.config.steps == 0:
            self._finish()
            return
        self._send_ghosts()
        self._drain_ready_steps()

    @entry
    def ghost(self, step: int, side: str, vec: Any) -> None:
        """A neighbor's boundary vector for *step* arrived."""
        key = (step, side)
        if key in self._ghost_buf:
            raise ConfigurationError(
                f"block ({self.bi},{self.bj}) got duplicate ghost {key}")
        self._ghost_buf[key] = vec
        self.charge(self.config.costs.ghost_cost(
            self.decomp.ghost_bytes(side)))
        self._drain_ready_steps()

    # -- the per-step pipeline -------------------------------------------------------

    def _ready(self) -> bool:
        if self._finished or not self._started:
            return False
        return all((self.step, side) in self._ghost_buf
                   for side in self.neighbors)

    def _drain_ready_steps(self) -> None:
        """Advance as many steps as buffered ghosts permit (usually one)."""
        while self._ready():
            self._advance_step()
            if self._finished:
                return

    def _advance_step(self) -> None:
        cfg = self.config
        for side in self.neighbors:
            vec = self._ghost_buf.pop((self.step, side))
            if cfg.payload == "real":
                self._install_ghost(side, vec)

        if cfg.payload == "real":
            if cfg.kernel == "percell":
                self.u[1:-1, 1:-1] = jacobi_step_percell(self.u)
            else:
                jacobi_step_into(self.u, self._scratch)
                self.u[1:-1, 1:-1] = self._scratch
            self._reapply_fixed_boundary()
        self.charge(cfg.costs.compute_cost(
            self.decomp.block_rows, self.decomp.block_cols))

        self.step += 1
        self.completed_at.append(self.now)
        if self.step >= cfg.steps:
            self._finish()
        else:
            self._send_ghosts()

    def _install_ghost(self, side: str, vec: np.ndarray) -> None:
        if side == "north":
            self.u[0, 1:-1] = vec
        elif side == "south":
            self.u[-1, 1:-1] = vec
        elif side == "west":
            self.u[1:-1, 0] = vec
        else:
            self.u[1:-1, -1] = vec

    def _boundary(self, side: str) -> Optional[np.ndarray]:
        if self.config.payload != "real":
            return None
        interior = self.u[1:-1, 1:-1]
        if side == "north":
            return interior[0, :].copy()
        if side == "south":
            return interior[-1, :].copy()
        if side == "west":
            return interior[:, 0].copy()
        return interior[:, -1].copy()

    def _send_ghosts(self) -> None:
        """Publish this block's current boundaries to all neighbors.

        Sends through :meth:`Runtime.send` directly using the
        precomputed plan — equivalent to
        ``self.thisProxy[nbr].ghost(...)`` per neighbor, minus the
        per-send proxy/BoundEntry allocations on the hottest app loop.
        """
        rts = self._require_rts()
        collection = self._id.collection
        step = self.step
        self.charge(self.config.costs.send_cost(len(self.neighbors)))
        tag = f"ghost s{step}"
        for side, nbr, opposite, size in self._ghost_plan:
            rts.send(ChareID(collection, nbr), "ghost",
                     (step, opposite, self._boundary(side)), {},
                     size=size, tag=tag)

    # -- completion -------------------------------------------------------------------

    def _finish(self) -> None:
        self._finished = True
        times_cb, checksum_cb, mesh_cb = self.done_targets
        times = np.array(self.completed_at, dtype=np.float64)
        self.contribute(times, "max", times_cb)
        if self.config.payload == "real":
            self.contribute(float(self.u[1:-1, 1:-1].sum()), "sum",
                            checksum_cb)
        else:
            self.contribute(0.0, "sum", checksum_cb)
        if self.config.gather_mesh:
            payload = (self.u[1:-1, 1:-1].copy()
                       if self.config.payload == "real" else None)
            self.contribute(payload, "concat", mesh_cb)

    def pack_size(self) -> int:
        if self.u is None:
            return 512
        return int(self.u.nbytes) + 512
