"""Collective-heavy benchmark applications.

The stencil and LeanMD apps exchange ghosts point-to-point; their
collectives (one reduction per step) barely touch the WAN.  The apps
here do the opposite — every step is a broadcast down plus a reduction
up — so they expose exactly the traffic pattern the collective-routing
work targets: a flat downward fan-out crosses the WAN once per remote
PE (or rank), while hierarchical routing crosses it once per remote
cluster and striping recovers the lost parallelism on the paced WAN
streams.

Two flavours, mirroring the stencil pair:

* :class:`CollectiveBenchApp` — chare-based BSP loop: a driver callback
  broadcasts ``step(k, payload)`` to every worker, each worker charges
  a small compute cost and contributes to a ``sum`` reduction whose
  completion triggers the next step.
* :func:`collective_rank_program` — plain-MPI style: every rank does
  ``bcast`` then ``allreduce`` per step, run via
  :func:`repro.ampi.world.ampi_run`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.ampi.world import ampi_run
from repro.core.chare import Chare
from repro.core.mapping import RoundRobinMapping
from repro.core.method import entry
from repro.errors import ConfigurationError
from repro.grid.environment import GridEnvironment

#: Default broadcast payload: big enough that WAN serialization matters
#: (1 ms on a 250 MB/s stream), small enough to stay latency-sensitive.
DEFAULT_PAYLOAD_BYTES = 256 * 1024

#: Per-worker compute charged per step (keeps the loop communication-
#: bound, as the paper's latency sweeps require).
DEFAULT_COMPUTE_S = 50e-6


@dataclass
class CollectiveResult:
    """Outcome of one collective-benchmark run (stencil-result surface)."""

    #: Virtual completion time of each step, seconds since launch.
    step_times: np.ndarray
    #: Sum of all reduction results (sanity/bit-identity check).
    checksum: float
    #: Total virtual time of the run, seconds.
    makespan: float
    #: Steps discarded as pipeline warm-up in the per-step statistic.
    warmup: int

    @property
    def steps(self) -> int:
        return len(self.step_times)

    @property
    def time_per_step(self) -> float:
        """Steady-state seconds per step."""
        if self.steps == 0:
            return 0.0
        if self.steps <= self.warmup + 1:
            return self.step_times[-1] / max(self.steps, 1)
        window = self.step_times[self.warmup:]
        return float(window[-1] - window[0]) / (len(window) - 1)


class CollectiveWorker(Chare):
    """One worker: receive the step broadcast, compute, contribute."""

    def __init__(self, compute_s: float, on_done) -> None:
        super().__init__()
        self._compute_s = compute_s
        self._on_done = on_done

    @entry()
    def step(self, k: int, payload) -> None:
        self.charge(self._compute_s)
        self.contribute(1.0, "sum", self._on_done)


@dataclass
class CollectiveBenchApp:
    """Chare-based broadcast/reduce loop over *objects* workers.

    Workers are placed round-robin across all PEs, so every PE of both
    clusters hosts broadcast targets — the worst case for a flat
    downward fan-out.
    """

    env: GridEnvironment
    objects: int = 64
    payload_bytes: int = DEFAULT_PAYLOAD_BYTES
    compute_s: float = DEFAULT_COMPUTE_S
    _step_times: List[float] = field(default_factory=list, repr=False)

    def run(self, steps: int, warmup: Optional[int] = None
            ) -> CollectiveResult:
        if steps <= 0:
            raise ConfigurationError(f"steps must be positive: {steps}")
        if self.objects <= 0:
            raise ConfigurationError(
                f"objects must be positive: {self.objects}")
        if warmup is None:
            warmup = min(max(steps // 5, 1), 5)

        rts = self.env.runtime
        proxy = rts.create_array(
            CollectiveWorker, list(range(self.objects)),
            RoundRobinMapping(),
            args=(self.compute_s, self._on_step_done))
        self._proxy = proxy
        self._steps = steps
        self._checksum = 0.0
        self._t0 = self.env.now
        self._step_times = []

        self._broadcast_step(0)
        self.env.run()
        if len(self._step_times) != steps:
            raise ConfigurationError(
                f"collective bench stalled: {len(self._step_times)} of "
                f"{steps} steps completed")
        return CollectiveResult(
            step_times=np.asarray(self._step_times, dtype=np.float64),
            checksum=self._checksum,
            makespan=self.env.now - self._t0, warmup=warmup)

    def _broadcast_step(self, k: int) -> None:
        self._proxy.step(k, 0.0, _size=self.payload_bytes,
                         _tag="bench:step")

    def _on_step_done(self, total: float) -> None:
        self._checksum += total
        self._step_times.append(self.env.now - self._t0)
        k = len(self._step_times)
        if k < self._steps:
            self._broadcast_step(k)


def collective_rank_program(mpi, steps: int, payload_bytes: int,
                            compute_s: float):
    """bcast + allreduce per step; returns the step completion times."""
    payload = b"\0" * payload_bytes
    times = []
    for _k in range(steps):
        data = payload if mpi.rank == 0 else None
        yield mpi.bcast(data, root=0)
        mpi.charge(compute_s)
        yield mpi.allreduce(1.0, "sum")
        times.append(mpi.now)
    return times


@dataclass
class AmpiCollectiveBenchApp:
    """AMPI-flavoured collective loop (ranks are the virtualization)."""

    env: GridEnvironment
    ranks: int = 16
    payload_bytes: int = DEFAULT_PAYLOAD_BYTES
    compute_s: float = DEFAULT_COMPUTE_S

    def run(self, steps: int, warmup: Optional[int] = None
            ) -> CollectiveResult:
        if steps <= 0:
            raise ConfigurationError(f"steps must be positive: {steps}")
        if warmup is None:
            warmup = min(max(steps // 5, 1), 5)
        t0 = self.env.now
        world = ampi_run(
            self.env, collective_rank_program, num_ranks=self.ranks,
            mapping=RoundRobinMapping(),
            program_args=(steps, self.payload_bytes, self.compute_s))
        results = world.results_in_rank_order()
        per_rank = np.array(results)                # (ranks, steps)
        step_times = per_rank.max(axis=0) - t0
        return CollectiveResult(
            step_times=step_times, checksum=float(per_rank.sum()),
            makespan=self.env.now - t0, warmup=warmup)
