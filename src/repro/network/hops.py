"""Per-hop message ledger records (the network flight recorder).

Every device a message traverses — delay/fault filters, the WAN/LAN
transports, striped stream pipes — stamps one :class:`HopSpan` onto the
message's hop ledger (a plain list the fabric threads through
:meth:`~repro.network.chain.DeviceChain.resolve` and
``TransportDevice.transit``).  The finished ledger flows to the trace
sinks via ``message_hops`` and powers per-link utilization timelines,
the wire-level critical-path decomposition, and the ``repro netview``
report.

A span's three timestamps partition its hop:

* ``enqueue``   — the message reached the device;
* ``dequeue``   — the device started serving it (pipe/stream grant);
* ``arrive``    — the hop completed.

``[enqueue, dequeue]`` is queueing (``device_queue`` for plain pipes,
``stripe_pacing`` for striped streams), ``[dequeue, dequeue + ser_s]``
is bandwidth serialization, and the remainder to ``arrive`` is
propagation.  Filter devices (delay, faults) emit single-interval spans
whose ``kind`` names the whole hop.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Optional, Tuple

_SLOTS = {"slots": True} if sys.version_info >= (3, 10) else {}

#: Span kinds a device may stamp.  ``wire`` and ``stream`` spans are
#: decomposed into queue/serialization/propagation sub-intervals by the
#: critical-path analyzer; other kinds attribute their whole interval.
HOP_KINDS = ("wire", "stream", "propagation", "device_queue")


@dataclass(frozen=True, **_SLOTS)
class HopSpan:
    """One device's contribution to a message's journey.

    ``device`` is the lane label (a stream pipe name for striped
    chunks); ``link`` is the owning device's name, so per-link rollups
    can aggregate stream lanes.
    """

    device: str
    link: str
    kind: str
    enqueue: float
    dequeue: float
    arrive: float
    #: Seconds the lane was *occupied* by this hop (the bandwidth term).
    ser_s: float = 0.0
    #: Lane occupancy observed at enqueue time (messages ahead).
    queue_depth: int = 0
    #: Stream index for striped chunks, ``None`` otherwise.
    stream: Optional[int] = None

    @property
    def queue_s(self) -> float:
        return self.dequeue - self.enqueue

    @property
    def total_s(self) -> float:
        return self.arrive - self.enqueue

    def to_dict(self) -> dict:
        return {
            "device": self.device,
            "link": self.link,
            "kind": self.kind,
            "enqueue": self.enqueue,
            "dequeue": self.dequeue,
            "arrive": self.arrive,
            "ser_s": self.ser_s,
            "queue_depth": self.queue_depth,
            **({"stream": self.stream} if self.stream is not None else {}),
        }


#: A finished ledger, as handed to ``message_hops``: spans in traversal
#: order (filters first, then the transport's wire/stream spans).
HopLedger = Tuple[HopSpan, ...]
