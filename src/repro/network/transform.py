"""Message-transforming chain devices.

Paper §2.2: "because modules can intercept and manipulate message data as
it is passed from module to module, capabilities such as encrypting or
compressing the data are possible."  These devices realize that VMI
capability and are used by the chain tests and by the Cactus-G-style
"compress WAN traffic" ablation.

Both devices are pure envelope transforms: they change the declared wire
size and charge a CPU cost, leaving the logical payload untouched (the
simulation never needs actual ciphertext).
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.network.devices import ChainDevice, ProcessResult
from repro.network.message import Message
from repro.network.topology import GridTopology

PairPredicate = Callable[[int, int, GridTopology], bool]


def _always(src_pe: int, dst_pe: int, topo: GridTopology) -> bool:
    return True


class CompressionDevice(ChainDevice):
    """Shrink matching messages' wire size at a CPU cost.

    Parameters
    ----------
    ratio:
        Compressed size = ``ceil(size * ratio)``; must be in (0, 1].
    throughput:
        Compression speed in bytes/second (CPU cost charged as delay);
        0 means free.
    applies_to:
        Which (src, dst) pairs to compress for; defaults to all.  The
        Cactus-G ablation passes a cross-cluster predicate so only WAN
        traffic pays the CPU cost.
    """

    def __init__(self, ratio: float, throughput: float = 0.0,
                 applies_to: PairPredicate = _always,
                 name: str = "compress") -> None:
        if not (0.0 < ratio <= 1.0):
            raise ConfigurationError(f"compression ratio {ratio} not in (0, 1]")
        if throughput < 0:
            raise ConfigurationError(f"negative throughput {throughput}")
        self.ratio = ratio
        self.throughput = throughput
        self.applies_to = applies_to
        self.name = name
        self.bytes_saved = 0

    def process(self, msg: Message, topo: GridTopology,
                rng: Optional[np.random.Generator], *,
                record: bool = True) -> ProcessResult:
        if not self.applies_to(msg.src_pe, msg.dst_pe, topo):
            return ProcessResult(message=msg)
        new_size = int(np.ceil(msg.size_bytes * self.ratio))
        cost = (msg.size_bytes / self.throughput) if self.throughput > 0 else 0.0
        if record:
            self.bytes_saved += msg.size_bytes - new_size
        return ProcessResult(message=msg.with_size(new_size), added_delay=cost)

    def reset_stats(self) -> None:
        self.bytes_saved = 0


class EncryptionDevice(ChainDevice):
    """Charge a per-byte CPU cost and a fixed header for matching messages.

    Encryption does not shrink data; it adds a small header (IV/MAC) and
    costs CPU time proportional to the payload.
    """

    def __init__(self, throughput: float, header_bytes: int = 32,
                 applies_to: PairPredicate = _always,
                 name: str = "encrypt") -> None:
        if throughput <= 0:
            raise ConfigurationError(
                f"encryption throughput must be positive: {throughput}")
        if header_bytes < 0:
            raise ConfigurationError(f"negative header size {header_bytes}")
        self.throughput = throughput
        self.header_bytes = header_bytes
        self.applies_to = applies_to
        self.name = name
        self.messages_encrypted = 0

    def process(self, msg: Message, topo: GridTopology,
                rng: Optional[np.random.Generator], *,
                record: bool = True) -> ProcessResult:
        if not self.applies_to(msg.src_pe, msg.dst_pe, topo):
            return ProcessResult(message=msg)
        if record:
            self.messages_encrypted += 1
        cost = msg.size_bytes / self.throughput
        return ProcessResult(
            message=msg.with_size(msg.size_bytes + self.header_bytes),
            added_delay=cost)

    def reset_stats(self) -> None:
        self.messages_encrypted = 0
