"""Message envelope shared by the network and runtime layers.

A :class:`Message` is what travels between processors.  The runtime layer
fills in chare/entry identifiers in :attr:`Message.payload`; the network
layer only looks at the envelope fields (source, destination, size,
priority).

Priorities follow the Charm++ convention: **smaller value = more urgent**.
``DEFAULT_PRIORITY`` is 0; the prioritized-WAN-message extension (paper
§6, third item) tags cross-cluster messages with ``WAN_EXPEDITED``
(negative, i.e. served first).

``Message`` sits on the per-event hot path — every send allocates one —
so it is a ``__slots__`` class with a straight-line ``__init__`` rather
than a dataclass: no ``__post_init__`` validation (the fabric validates
sizes once at its boundary), no per-field descriptor machinery, one
allocation per message.

Sequence numbers are drawn from a module counter that the runtime
**resets on construction** (:func:`reset_seq_counter`), so a run's seq
ids — and therefore its trace digests — are identical whether the run
executes first, tenth, or inside a pool worker.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

#: Priority assigned when the sender does not specify one.
DEFAULT_PRIORITY: int = 0
#: Priority used by the "expedite WAN messages" scheduler extension.
WAN_EXPEDITED: int = -10

_seq_counter = itertools.count()


def reset_seq_counter() -> None:
    """Restart message sequence numbering at zero.

    Called by :class:`~repro.core.rts.Runtime` construction so every
    simulated run numbers its messages from a fixed origin regardless of
    what else ran earlier in the process.  Simulations are single-
    threaded and never interleave two runtimes' sends, so a module-level
    counter with a per-run reset is exactly as strong as a per-runtime
    counter — without threading a runtime reference into every
    ``Message()`` call site.
    """
    global _seq_counter
    _seq_counter = itertools.count()


class Message:
    """A single asynchronous message between two processors.

    Parameters
    ----------
    src_pe, dst_pe:
        Global processor indices of the sender and the receiver.
    size_bytes:
        Envelope + payload size used for bandwidth/transfer modelling.
        This is *declared*, not measured — application code states how
        large its ghost vector / coordinate block would be on the wire.
        Validated (non-negative) at the fabric boundary, not here.
    payload:
        Opaque runtime-level content (entry-method invocation record).
    priority:
        Scheduling priority at the destination queue (smaller = sooner).
    tag:
        Human-readable label for traces ("ghost", "coords", "forces"...).
    seq:
        Monotonic sequence number: FIFO tiebreak inside equal
        priorities and the identity key for tracing/ARQ.  ``None``
        (default) draws the next per-run number; pass an explicit value
        when deriving one message from another (bundle expansion, wire
        transforms) so the derived copy keeps the original's identity.
    cause:
        Causal parent: the span id of the entry-method execution that
        sent this message (stamped by the scheduler when the sender's
        busy interval ends and the outbox flushes).  ``None`` for
        messages originated outside any execution (driver sends,
        protocol acks) or when tracing is off.
    ack_for:
        For reliable-transport acks: the sequence id of the data message
        this ack acknowledges.  ``None`` on ordinary messages.  The
        trace records it so causal analysis can draw ack edges without
        parsing tags.
    """

    __slots__ = ("src_pe", "dst_pe", "size_bytes", "payload", "priority",
                 "tag", "crossed_wan", "sent_at", "seq", "cause", "ack_for",
                 "relay_hop", "arq_attempt", "src_obj", "dst_obj")

    def __init__(self, src_pe: int, dst_pe: int, size_bytes: int,
                 payload: Any = None, priority: int = DEFAULT_PRIORITY,
                 tag: str = "", seq: Optional[int] = None,
                 cause: Optional[int] = None,
                 ack_for: Optional[int] = None) -> None:
        self.src_pe = src_pe
        self.dst_pe = dst_pe
        self.size_bytes = size_bytes
        self.payload = payload
        self.priority = priority
        self.tag = tag
        #: Filled by the fabric: did this message cross the wide-area link?
        self.crossed_wan = False
        #: Filled by the fabric: virtual time the message was handed to it.
        self.sent_at: Optional[float] = None
        self.seq = next(_seq_counter) if seq is None else seq
        self.cause = cause
        self.ack_for = ack_for
        #: Location-independent object labels (``str(ChareID)``) stamped
        #: by the runtime *only when tracing is enabled*; ``None`` for
        #: protocol traffic (acks), collective internals, and obs-off
        #: runs.  Plain attribute writes — no float math — so the obs-off
        #: hot path stays bit-identical.
        self.src_obj: Optional[str] = None
        self.dst_obj: Optional[str] = None
        #: Relay depth in a hierarchical multicast tree (0 = direct send,
        #: 1 = origin -> cluster relay, 2 = relay re-fan, ...).  Stamped
        #: by the runtime's dispatch path; recorded in hop ledgers.
        self.relay_hop = 0
        #: ARQ transmission attempt (0 = not under the reliable layer or
        #: first copy; >= 2 marks a retransmission's wire copy).
        self.arq_attempt = 0

    def with_size(self, new_size: int) -> "Message":
        """Return a shallow copy with a different wire size.

        Used by transform devices (compression) which change the number of
        bytes on the wire without touching the logical payload.
        """
        clone = Message(
            src_pe=self.src_pe,
            dst_pe=self.dst_pe,
            size_bytes=new_size,
            payload=self.payload,
            priority=self.priority,
            tag=self.tag,
            seq=self.seq,
            cause=self.cause,
            ack_for=self.ack_for,
        )
        clone.crossed_wan = self.crossed_wan
        clone.sent_at = self.sent_at
        clone.relay_hop = self.relay_hop
        clone.arq_attempt = self.arq_attempt
        clone.src_obj = self.src_obj
        clone.dst_obj = self.dst_obj
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Message(seq={self.seq}, {self.src_pe}->{self.dst_pe}, "
                f"{self.size_bytes}B, prio={self.priority}, "
                f"tag={self.tag!r})")
