"""Message envelope shared by the network and runtime layers.

A :class:`Message` is what travels between processors.  The runtime layer
fills in chare/entry identifiers in :attr:`Message.payload`; the network
layer only looks at the envelope fields (source, destination, size,
priority).

Priorities follow the Charm++ convention: **smaller value = more urgent**.
``DEFAULT_PRIORITY`` is 0; the prioritized-WAN-message extension (paper
§6, third item) tags cross-cluster messages with ``WAN_EXPEDITED``
(negative, i.e. served first).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

#: Priority assigned when the sender does not specify one.
DEFAULT_PRIORITY: int = 0
#: Priority used by the "expedite WAN messages" scheduler extension.
WAN_EXPEDITED: int = -10

_seq_counter = itertools.count()


@dataclass
class Message:
    """A single asynchronous message between two processors.

    Parameters
    ----------
    src_pe, dst_pe:
        Global processor indices of the sender and the receiver.
    size_bytes:
        Envelope + payload size used for bandwidth/transfer modelling.
        This is *declared*, not measured — application code states how
        large its ghost vector / coordinate block would be on the wire.
    payload:
        Opaque runtime-level content (entry-method invocation record).
    priority:
        Scheduling priority at the destination queue (smaller = sooner).
    tag:
        Human-readable label for traces ("ghost", "coords", "forces"...).
    """

    src_pe: int
    dst_pe: int
    size_bytes: int
    payload: Any = None
    priority: int = DEFAULT_PRIORITY
    tag: str = ""
    #: Filled by the fabric: did this message cross the wide-area link?
    crossed_wan: bool = False
    #: Filled by the fabric: virtual time the message was handed to it.
    sent_at: Optional[float] = None
    #: Monotonic sequence number: FIFO tiebreak inside equal priorities.
    seq: int = field(default_factory=lambda: next(_seq_counter))
    #: Causal parent: the span id of the entry-method execution that sent
    #: this message (stamped by the scheduler when the sender's busy
    #: interval ends and the outbox flushes).  ``None`` for messages
    #: originated outside any execution (driver sends, protocol acks) or
    #: when tracing is off.
    cause: Optional[int] = None
    #: For reliable-transport acks: the sequence id of the data message
    #: this ack acknowledges.  ``None`` on ordinary messages.  The trace
    #: records it so causal analysis can draw ack edges without parsing
    #: tags.
    ack_for: Optional[int] = None

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError(f"negative message size {self.size_bytes}")

    def with_size(self, new_size: int) -> "Message":
        """Return a shallow copy with a different wire size.

        Used by transform devices (compression) which change the number of
        bytes on the wire without touching the logical payload.
        """
        clone = Message(
            src_pe=self.src_pe,
            dst_pe=self.dst_pe,
            size_bytes=new_size,
            payload=self.payload,
            priority=self.priority,
            tag=self.tag,
        )
        clone.crossed_wan = self.crossed_wan
        clone.sent_at = self.sent_at
        clone.seq = self.seq
        clone.cause = self.cause
        clone.ack_for = self.ack_for
        return clone
