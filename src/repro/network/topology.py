"""Grid → cluster → node → processor topology model.

The paper's experiments always use *two* clusters with the allocated
processors split evenly between them (1+1, 2+2, … 32+32) and two
processors per node (dual-CPU Itanium-2 boxes).  The model here is more
general — any number of clusters, any node widths — because the load
balancer and the network chain dispatch on topology queries
(:meth:`GridTopology.same_node`, :meth:`GridTopology.same_cluster`).

Processor numbering is *global and dense*: PE ids run 0..P-1 across the
whole grid, cluster by cluster, node by node, matching how the runtime
and applications address processors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.errors import TopologyError


@dataclass(frozen=True)
class Processor:
    """One physical processor (PE)."""

    pe: int          # global dense index
    node: int        # global dense node index
    cluster: int     # cluster index


@dataclass(frozen=True)
class Node:
    """One machine hosting one or more processors."""

    node: int
    cluster: int
    pes: Tuple[int, ...]


@dataclass(frozen=True)
class Cluster:
    """A named collection of nodes connected by a low-latency LAN."""

    index: int
    name: str
    nodes: Tuple[Node, ...]
    #: Flattened PE list, precomputed once: ``cluster_pes`` sits on the
    #: multicast-relay hot path, so rebuilding the tuple per call would
    #: be paid once per collective hop.
    pes: Tuple[int, ...] = field(init=False)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "pes",
            tuple(pe for node in self.nodes for pe in node.pes))


class GridTopology:
    """Immutable description of the machines an experiment runs on.

    Parameters
    ----------
    cluster_sizes:
        Number of *processors* in each cluster, in cluster order.
    pes_per_node:
        Processors per node (the paper's machines are dual-CPU, so 2).
        The last node of a cluster may be narrower if the count does not
        divide evenly.
    cluster_names:
        Optional display names; defaults to ``cluster0``, ``cluster1``, …
    """

    def __init__(self, cluster_sizes: Sequence[int], pes_per_node: int = 2,
                 cluster_names: Iterable[str] = ()) -> None:
        if not cluster_sizes:
            raise TopologyError("need at least one cluster")
        if any(s <= 0 for s in cluster_sizes):
            raise TopologyError(f"non-positive cluster size in {cluster_sizes}")
        if pes_per_node <= 0:
            raise TopologyError(f"pes_per_node must be positive: {pes_per_node}")

        names = list(cluster_names)
        if not names:
            names = [f"cluster{i}" for i in range(len(cluster_sizes))]
        if len(names) != len(cluster_sizes):
            raise TopologyError("cluster_names length must match cluster_sizes")

        self._clusters: List[Cluster] = []
        self._pe_to_cluster: Dict[int, int] = {}
        self._pe_to_node: Dict[int, int] = {}
        pe = 0
        node_id = 0
        for ci, size in enumerate(cluster_sizes):
            nodes: List[Node] = []
            remaining = size
            while remaining > 0:
                width = min(pes_per_node, remaining)
                pes = tuple(range(pe, pe + width))
                nodes.append(Node(node=node_id, cluster=ci, pes=pes))
                for p in pes:
                    self._pe_to_cluster[p] = ci
                    self._pe_to_node[p] = node_id
                pe += width
                node_id += 1
                remaining -= width
            self._clusters.append(Cluster(index=ci, name=names[ci],
                                          nodes=tuple(nodes)))
        self._num_pes = pe
        self._pes_per_node = pes_per_node

    # -- factory helpers ---------------------------------------------------

    @classmethod
    def single_cluster(cls, num_pes: int, pes_per_node: int = 2,
                       name: str = "local") -> "GridTopology":
        """A conventional one-cluster machine (baseline/no-grid runs)."""
        return cls([num_pes], pes_per_node, [name])

    @classmethod
    def two_cluster(cls, total_pes: int, pes_per_node: int = 2,
                    names: Tuple[str, str] = ("siteA", "siteB")
                    ) -> "GridTopology":
        """The paper's co-allocation: *total_pes* split evenly in two.

        Odd totals are rejected — the paper always uses 1+1 … 32+32.
        """
        if total_pes < 2 or total_pes % 2 != 0:
            raise TopologyError(
                f"two_cluster requires an even total >= 2, got {total_pes}")
        half = total_pes // 2
        return cls([half, half], pes_per_node, list(names))

    # -- queries -------------------------------------------------------------

    @property
    def num_pes(self) -> int:
        """Total processors across all clusters."""
        return self._num_pes

    @property
    def num_clusters(self) -> int:
        return len(self._clusters)

    @property
    def clusters(self) -> Tuple[Cluster, ...]:
        return tuple(self._clusters)

    def pes(self) -> range:
        """All global PE indices."""
        return range(self._num_pes)

    def cluster_of(self, pe: int) -> int:
        """Cluster index hosting *pe*."""
        try:
            return self._pe_to_cluster[pe]
        except KeyError:
            raise TopologyError(f"unknown PE {pe}") from None

    def node_of(self, pe: int) -> int:
        """Global node index hosting *pe*."""
        try:
            return self._pe_to_node[pe]
        except KeyError:
            raise TopologyError(f"unknown PE {pe}") from None

    def same_node(self, pe_a: int, pe_b: int) -> bool:
        """Do two PEs share a physical machine (shared-memory reachable)?"""
        return self.node_of(pe_a) == self.node_of(pe_b)

    def same_cluster(self, pe_a: int, pe_b: int) -> bool:
        """Do two PEs live in the same cluster (LAN reachable)?"""
        return self.cluster_of(pe_a) == self.cluster_of(pe_b)

    def crosses_wan(self, pe_a: int, pe_b: int) -> bool:
        """Would a message between these PEs traverse the wide area?"""
        return not self.same_cluster(pe_a, pe_b)

    def cluster_pes(self, cluster: int) -> Tuple[int, ...]:
        """All PE indices belonging to *cluster*."""
        try:
            return self._clusters[cluster].pes
        except IndexError:
            raise TopologyError(f"unknown cluster {cluster}") from None

    def describe(self) -> str:
        """One-line human summary, e.g. ``siteA:8 + siteB:8 (2 PEs/node)``."""
        parts = [f"{c.name}:{len(c.pes)}" for c in self._clusters]
        return " + ".join(parts) + f" ({self._pes_per_node} PEs/node)"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"GridTopology({self.describe()})"
