"""Shared-pipe contention model.

The paper's Table 2 shows the artificial-latency prediction diverging from
the real two-cluster measurement at 64 processors, which the authors
attribute to "increased contention in the network" when many processors
push data over the same wide-area path in a short window.

:class:`SharedPipe` models exactly that: a FIFO resource representing the
bytes-on-the-wire capacity of one link direction.  Each message occupies
the pipe for its *serialization time* (size / bandwidth); if the pipe is
busy, the message queues.  Propagation latency is **not** serialized — two
messages' bits can be in flight simultaneously — matching how real links
pipeline.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Tuple


@dataclass
class SharedPipe:
    """One direction of a contended link.

    Parameters
    ----------
    name:
        Label for statistics.
    """

    name: str = "pipe"
    _next_free: float = 0.0
    #: Total seconds messages spent queueing behind earlier traffic.
    queue_delay_total: float = 0.0
    #: Number of reservations made.
    reservations: int = 0
    #: End times of reservations not yet finished at the last ``reserve``
    #: call (the occupancy window the gauges read).
    _ends: Deque[float] = field(default_factory=deque, repr=False)
    #: Largest occupancy (reservations queued or being served) ever
    #: observed at a reservation's enqueue instant.
    high_water: int = 0

    def reserve(self, now: float, duration: float) -> float:
        """Reserve the pipe for *duration* seconds starting at/after *now*.

        Returns the actual start time (``>= now``); the pipe is then busy
        until ``start + duration``.
        """
        if duration < 0:
            raise ValueError(f"negative serialization time {duration}")
        ends = self._ends
        while ends and ends[0] <= now:
            ends.popleft()
        self.last_queue_depth = len(ends)
        start = max(now, self._next_free)
        self._next_free = start + duration
        ends.append(self._next_free)
        if len(ends) > self.high_water:
            self.high_water = len(ends)
        self.queue_delay_total += start - now
        self.reservations += 1
        return start

    #: Occupancy seen by the most recent reservation at its enqueue
    #: instant (messages already holding or awaiting the pipe).
    last_queue_depth: int = 0

    @property
    def next_free(self) -> float:
        """Virtual time at which the pipe becomes idle."""
        return self._next_free

    def in_flight(self, now: float) -> int:
        """Reservations still occupying (or queued for) the pipe at *now*."""
        return sum(1 for end in self._ends if end > now)

    def reset(self) -> None:
        """Forget all reservations (between benchmark repetitions)."""
        self._next_free = 0.0
        self.queue_delay_total = 0.0
        self.reservations = 0
        self._ends.clear()
        self.high_water = 0
        self.last_queue_depth = 0


class PipePair:
    """A full-duplex contended link: one :class:`SharedPipe` per direction.

    Directions are keyed by ``(src_cluster, dst_cluster)`` so a single
    object can serve the whole inter-cluster path of a two-cluster grid.
    """

    def __init__(self, name: str = "wan") -> None:
        self.name = name
        self._pipes: Dict[Tuple[int, int], SharedPipe] = {}

    def direction(self, src_cluster: int, dst_cluster: int) -> SharedPipe:
        """The pipe carrying traffic from *src_cluster* to *dst_cluster*."""
        key = (src_cluster, dst_cluster)
        pipe = self._pipes.get(key)
        if pipe is None:
            pipe = SharedPipe(name=f"{self.name}[{src_cluster}->{dst_cluster}]")
            self._pipes[key] = pipe
        return pipe

    def total_queue_delay(self) -> float:
        """Aggregate queueing delay over both directions."""
        return sum(p.queue_delay_total for p in self._pipes.values())

    def reset(self) -> None:
        for pipe in self._pipes.values():
            pipe.reset()
