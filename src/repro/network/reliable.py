"""Reliable delivery over a lossy WAN: ack / retransmit / dedup.

The fabric is a datagram service: with a :class:`FaultyDevice` in the
chain, messages vanish, double up, or arrive late.  Message-driven
objects tolerate *latency*, but the runtime's correctness assumes every
message eventually arrives exactly once (a lost ghost deadlocks the
stencil; a duplicated one corrupts it).  :class:`ReliableTransport`
restores that guarantee the way MPWide and MPICH-G2 do for real Grid
links — a lightweight ARQ protocol above the unreliable path:

* every cross-WAN message is tracked until the receiver's **ack** (a
  small reverse-direction message, itself subject to faults) comes back;
* a per-transfer **retransmit timer** (``Engine.post`` / ``cancel``)
  resends on timeout with exponential backoff, giving up with a
  :class:`~repro.errors.RetransmitError` after a capped retry budget
  (so a permanently dark link surfaces as an error, not a silent hang);
* the receiver **deduplicates** by message sequence id, so wire
  duplicates and spurious retransmissions deliver exactly once;
* the retransmission timeout adapts per (src, dst) pair via the classic
  Jacobson/Karels SRTT/RTTVAR estimator with Karn's rule (no RTT samples
  from retransmitted transfers), seeded from the fabric's stats-free
  :meth:`~repro.network.fabric.NetworkFabric.one_way_time` probe.

Intra-cluster traffic bypasses the protocol entirely (those links are
modelled loss-free; acking them would double the event count), so the
wrapper is free when no faults are configured on the WAN.

Everything is deterministic: timers fire at virtual times derived from
seeded draws, so two same-seed runs retransmit identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

from repro.errors import ConfigurationError, RetransmitError
from repro.network.fabric import DeliverFn, FabricStats, NetworkFabric
from repro.network.message import Message
from repro.network.topology import GridTopology
from repro.sim.engine import Engine, EventHandle
from repro.sim.trace import TraceSink


@dataclass(frozen=True)
class RetransmitPolicy:
    """Tunables of the ack/retransmit protocol.

    The defaults suit millisecond-class WAN latencies (the paper's
    TeraGrid path): first RTO is twice the model round-trip, backoff
    doubles it per timeout, and eight retries ride out ~0.5 s outages.
    """

    #: Wire size of an ack message (sequence id + header).
    ack_bytes: int = 64
    #: First RTO = ``initial_rto_factor`` x modelled round-trip time.
    initial_rto_factor: float = 2.0
    #: Bounds on the retransmission timeout, seconds.
    rto_min: float = 100e-6
    rto_max: float = 5.0
    #: Multiplier applied to the RTO on every timeout.
    backoff: float = 2.0
    #: Retransmissions allowed before the transfer fails.
    max_retries: int = 8
    #: SRTT/RTTVAR gains and the variance weight in RTO = SRTT + k*VAR.
    srtt_gain: float = 0.125
    rttvar_gain: float = 0.25
    rttvar_weight: float = 4.0

    def __post_init__(self) -> None:
        if self.ack_bytes < 0:
            raise ConfigurationError(f"negative ack_bytes {self.ack_bytes}")
        if not (0 < self.rto_min <= self.rto_max):
            raise ConfigurationError(
                f"need 0 < rto_min <= rto_max, got {self.rto_min}, "
                f"{self.rto_max}")
        if self.backoff < 1.0 or self.initial_rto_factor <= 0:
            raise ConfigurationError("backoff must be >= 1, factor > 0")
        if self.max_retries < 0:
            raise ConfigurationError(f"negative max_retries {self.max_retries}")


@dataclass
class ReliableStats:
    """Counters kept by one :class:`ReliableTransport`."""

    transfers: int = 0          # reliable transfers initiated
    acked: int = 0              # transfers completed (ack received)
    retransmits: int = 0        # data resends triggered by timeouts
    dups_suppressed: int = 0    # arrivals discarded as already-delivered
    acks_sent: int = 0          # acks emitted by the receiver side
    rtt_samples: int = 0        # unambiguous RTT measurements taken
    failures: int = 0           # transfers that exhausted their retries

    def as_metrics(self) -> Dict[str, int]:
        """Flat ``reliable.*`` metric names for the observability registry."""
        return {
            "reliable.transfers": self.transfers,
            "reliable.acked": self.acked,
            "reliable.retransmits": self.retransmits,
            "reliable.dups_suppressed": self.dups_suppressed,
            "reliable.acks_sent": self.acks_sent,
            "reliable.rtt_samples": self.rtt_samples,
            "reliable.failures": self.failures,
        }


@dataclass
class _RttState:
    """Jacobson/Karels estimator state for one (src, dst) pair."""

    srtt: float
    rttvar: float

    def update(self, sample: float, policy: RetransmitPolicy) -> None:
        err = sample - self.srtt
        self.srtt += policy.srtt_gain * err
        self.rttvar += policy.rttvar_gain * (abs(err) - self.rttvar)

    def rto(self, policy: RetransmitPolicy) -> float:
        return min(max(self.srtt + policy.rttvar_weight * self.rttvar,
                       policy.rto_min), policy.rto_max)


@dataclass
class _Pending:
    """One in-flight reliable transfer on the sender side."""

    msg: Message
    deliver: DeliverFn
    rto: float
    attempts: int = 0
    timer: Optional[EventHandle] = None
    last_sent: float = 0.0


class ReliableTransport:
    """A drop-in fabric wrapper adding exactly-once WAN delivery.

    Exposes the :class:`~repro.network.fabric.NetworkFabric` surface the
    runtime uses (``send``, ``one_way_time``, ``reset_stats``, plus the
    ``engine`` / ``topology`` / ``tracer`` / ``stats`` attributes), so
    :class:`~repro.core.rts.Runtime` works unchanged on top of it.

    Parameters
    ----------
    fabric:
        The underlying (possibly faulty) datagram fabric.
    policy:
        Protocol tunables; ``None`` uses the defaults.
    """

    def __init__(self, fabric: NetworkFabric,
                 policy: Optional[RetransmitPolicy] = None) -> None:
        self.fabric = fabric
        self.policy = policy or RetransmitPolicy()
        self.rstats = ReliableStats()
        self._pending: Dict[int, _Pending] = {}
        self._delivered: Set[int] = set()
        self._rtt: Dict[Tuple[int, int], _RttState] = {}

    # -- fabric surface delegation ---------------------------------------

    @property
    def engine(self) -> Engine:
        return self.fabric.engine

    @property
    def topology(self) -> GridTopology:
        return self.fabric.topology

    @property
    def tracer(self) -> Optional[TraceSink]:
        return self.fabric.tracer

    @property
    def stats(self) -> FabricStats:
        return self.fabric.stats

    @property
    def wan_in_flight(self) -> int:
        """Cross-WAN wire copies currently in transit (fabric gauge)."""
        return self.fabric.wan_in_flight

    @property
    def wan_sent(self) -> int:
        """Cumulative cross-WAN wire copies put on the wire."""
        return self.fabric.wan_sent

    def one_way_time(self, src_pe: int, dst_pe: int,
                     size_bytes: int) -> float:
        return self.fabric.one_way_time(src_pe, dst_pe, size_bytes)

    def reset_stats(self) -> None:
        self.fabric.reset_stats()
        self.rstats = ReliableStats()

    # -- sending ----------------------------------------------------------

    def send(self, msg: Message, deliver: DeliverFn) -> float:
        """Dispatch *msg*; cross-WAN messages get the ARQ treatment.

        Returns the (first-copy) fabric arrival time; for a reliable
        transfer whose first copy is dropped this is ``math.inf`` even
        though a retransmission will eventually deliver it.
        """
        if not self.topology.crosses_wan(msg.src_pe, msg.dst_pe):
            return self.fabric.send(msg, deliver)

        pend = _Pending(msg=msg, deliver=deliver,
                        rto=self._first_rto(msg))
        self._pending[msg.seq] = pend
        self.rstats.transfers += 1
        return self._transmit(pend)

    def _first_rto(self, msg: Message) -> float:
        policy = self.policy
        state = self._rtt.get((msg.src_pe, msg.dst_pe))
        if state is not None:
            return state.rto(policy)
        round_trip = (self.one_way_time(msg.src_pe, msg.dst_pe,
                                        msg.size_bytes)
                      + self.one_way_time(msg.dst_pe, msg.src_pe,
                                          policy.ack_bytes))
        return min(max(policy.initial_rto_factor * round_trip,
                       policy.rto_min), policy.rto_max)

    def _transmit(self, pend: _Pending) -> float:
        engine = self.engine
        pend.attempts += 1
        pend.last_sent = engine.now
        # Stamp the attempt so the flight recorder can tell a
        # retransmission's wire copy apart from the original's.
        pend.msg.arq_attempt = pend.attempts
        if pend.attempts > 1:
            self.rstats.retransmits += 1
            if self.tracer is not None:
                self.tracer.note_retransmit()
        seq = pend.msg.seq
        arrival = self.fabric.send(
            pend.msg, lambda m, d=pend.deliver: self._on_data(m, d))
        pend.timer = engine.post_in(
            pend.rto, lambda seq=seq: self._on_timeout(seq))
        return arrival

    def _on_timeout(self, seq: int) -> None:
        pend = self._pending.get(seq)
        if pend is None:  # acked after the timer was already queued
            return
        policy = self.policy
        if pend.attempts > policy.max_retries:
            self._pending.pop(seq)
            self.rstats.failures += 1
            msg = pend.msg
            raise RetransmitError(
                f"message seq={seq} ({msg.tag!r}, PE {msg.src_pe} -> "
                f"PE {msg.dst_pe}) undelivered after {pend.attempts} "
                f"attempts; WAN presumed down")
        pend.rto = min(pend.rto * policy.backoff, policy.rto_max)
        self._transmit(pend)

    # -- receiving ---------------------------------------------------------

    def _on_data(self, msg: Message, deliver: DeliverFn) -> None:
        """A wire copy arrived at the destination: ack, dedup, deliver."""
        seq = msg.seq
        # Always (re-)ack: the sender may be retrying because the
        # previous ack was lost, and only an ack stops that.
        self._send_ack(msg)
        if seq in self._delivered:
            self.rstats.dups_suppressed += 1
            if self.tracer is not None:
                self.tracer.note_dup_suppressed()
            return
        self._delivered.add(seq)
        deliver(msg)

    def _send_ack(self, msg: Message) -> None:
        self.rstats.acks_sent += 1
        ack = Message(src_pe=msg.dst_pe, dst_pe=msg.src_pe,
                      size_bytes=self.policy.ack_bytes,
                      tag=f"ack:{msg.seq}", ack_for=msg.seq)
        self.fabric.send(
            ack, lambda _m, seq=msg.seq: self._on_ack(seq))

    def _on_ack(self, seq: int) -> None:
        pend = self._pending.pop(seq, None)
        if pend is None:  # duplicate or stale ack
            return
        if pend.timer is not None:
            self.engine.cancel(pend.timer)
        self.rstats.acked += 1
        if pend.attempts == 1:
            # Karn's rule: only unambiguous (never-retransmitted)
            # transfers yield RTT samples.
            sample = self.engine.now - pend.last_sent
            self._observe_rtt((pend.msg.src_pe, pend.msg.dst_pe), sample)

    def _observe_rtt(self, pair: Tuple[int, int], sample: float) -> None:
        self.rstats.rtt_samples += 1
        state = self._rtt.get(pair)
        if state is None:
            self._rtt[pair] = _RttState(srtt=sample, rttvar=sample / 2.0)
        else:
            state.update(sample, self.policy)

    # -- introspection ------------------------------------------------------

    @property
    def in_flight(self) -> int:
        """Reliable transfers currently awaiting an ack."""
        return len(self._pending)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"ReliableTransport(in_flight={self.in_flight}, "
                f"acked={self.rstats.acked}, "
                f"retransmits={self.rstats.retransmits})")
