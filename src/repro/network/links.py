"""Link performance models.

A :class:`LinkModel` answers one question: *how long does a message of S
bytes take on this link?*  The answer is the classic alpha-beta model —
fixed one-way latency plus a bandwidth term — optionally perturbed by a
jitter model (used only by the "real TeraGrid" environment; artificial
latency experiments are jitter-free, matching the paper's delay device).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol

import numpy as np

from repro.errors import ConfigurationError
from repro.units import transfer_time


class JitterModel(Protocol):
    """Draws a non-negative extra delay for a single message."""

    def sample(self, rng: np.random.Generator) -> float:
        """Return an additional delay in seconds (>= 0)."""
        ...


@dataclass(frozen=True)
class NoJitter:
    """The degenerate jitter model: always zero."""

    def sample(self, rng: np.random.Generator) -> float:
        return 0.0


@dataclass(frozen=True)
class LognormalJitter:
    """Heavy-tailed WAN jitter.

    Wide-area RTT distributions are well approximated by a lognormal body;
    ``median`` sets the scale (seconds), ``sigma`` the spread in log-space.
    The sample is the lognormal draw minus its median so that *typical*
    messages see ~0 extra delay and the tail sees spikes, keeping the base
    link latency meaningful.
    """

    median: float
    sigma: float = 0.5

    def __post_init__(self) -> None:
        if self.median < 0 or self.sigma < 0:
            raise ConfigurationError(
                f"invalid jitter parameters median={self.median}, "
                f"sigma={self.sigma}")

    def sample(self, rng: np.random.Generator) -> float:
        draw = self.median * float(np.exp(self.sigma * rng.standard_normal()))
        return max(draw - self.median, 0.0)


@dataclass(frozen=True)
class LinkModel:
    """Alpha-beta performance model of one link class.

    Parameters
    ----------
    name:
        Label used in traces and statistics ("shmem", "lan", "wan").
    latency:
        One-way latency in seconds (the alpha term).
    bandwidth:
        Bytes per second (the beta term); ``0`` means infinitely fast
        (pure-latency link).
    per_message_overhead:
        Fixed software send/receive cost charged per message, in seconds
        (protocol processing, independent of size).
    jitter:
        Optional stochastic extra delay.
    """

    name: str
    latency: float
    bandwidth: float = 0.0
    per_message_overhead: float = 0.0
    jitter: Optional[JitterModel] = None

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ConfigurationError(f"negative latency on link {self.name!r}")
        if self.bandwidth < 0:
            raise ConfigurationError(f"negative bandwidth on link {self.name!r}")
        if self.per_message_overhead < 0:
            raise ConfigurationError(
                f"negative overhead on link {self.name!r}")

    def transit_time(self, size_bytes: int,
                     rng: Optional[np.random.Generator] = None) -> float:
        """One-way transit time for *size_bytes* on this link.

        The jitter model is only consulted when an *rng* is supplied; this
        keeps pure-model code paths (tests, analytic checks) deterministic
        without having to thread a generator everywhere.
        """
        t = (self.latency + self.per_message_overhead
             + transfer_time(size_bytes, self.bandwidth))
        if self.jitter is not None and rng is not None:
            t += self.jitter.sample(rng)
        return t

    def serialization_time(self, size_bytes: int) -> float:
        """Time the link itself is *occupied* by this message.

        Used by the contention model: while one message's bytes are on the
        wire, the next message queues.  Latency does not occupy the pipe
        (it is propagation, which pipelines), only the bandwidth term does.
        """
        return transfer_time(size_bytes, self.bandwidth)


# Ready-made link classes used across the presets -------------------------

def myrinet_like(name: str = "lan") -> LinkModel:
    """Intra-cluster interconnect of the paper's era (Myrinet-class)."""
    return LinkModel(name=name, latency=10e-6, bandwidth=250e6,
                     per_message_overhead=5e-6)


def shared_memory(name: str = "shmem") -> LinkModel:
    """Same-node communication through shared memory."""
    return LinkModel(name=name, latency=1e-6, bandwidth=1e9,
                     per_message_overhead=1e-6)


def wan_tcp(latency: float, bandwidth: float = 100e6,
            jitter: Optional[JitterModel] = None,
            name: str = "wan") -> LinkModel:
    """Wide-area TCP path with configurable one-way latency."""
    return LinkModel(name=name, latency=latency, bandwidth=bandwidth,
                     per_message_overhead=20e-6, jitter=jitter)
