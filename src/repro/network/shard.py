"""Shard partitioning and conservative lookahead extraction.

The sharded PDES runner splits the event space along *cluster*
boundaries: loopback and shared-memory edges have sub-microsecond
floors, so the PEs of one cluster are pinned into the same shard, while
the cross-cluster hop — the paper's 2–64 ms artificial WAN delay — is
exactly the conservative synchronization window.

Lookahead between two shards is the *static floor* of the cross-shard
:class:`~repro.network.chain.DeviceChain` latency: the chain is resolved
for a zero-byte probe with ``record=False`` (pure model query, no stats,
no faults, no contention), and the floor is the pre-transport delay plus
the transport link's size-zero transit time.  Link transit is monotone
in size, contention and duplication only add delay, and jittered links
are rejected for sharded runs, so no real message can ever beat the
probe — the property conservative synchronization rests on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.network.chain import DeviceChain
from repro.network.devices import TransportDevice
from repro.network.message import Message
from repro.network.topology import GridTopology


@dataclass(frozen=True)
class ShardPlan:
    """A cluster-aligned partition of the PEs plus its lookahead matrix."""

    #: Per-shard PE tuples (disjoint, covering all PEs, cluster-aligned).
    shards: Tuple[Tuple[int, ...], ...]
    #: ``lookahead[v][w]``: minimum chain-latency floor of any message a
    #: PE of shard *v* can send to a PE of shard *w* (``inf`` on the
    #: diagonal; never consulted for v == w).
    lookahead: Tuple[Tuple[float, ...], ...]

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def owner_of(self, pe: int) -> int:
        """Shard index owning *pe*."""
        for index, pes in enumerate(self.shards):
            if pe in pes:
                return index
        raise ConfigurationError(f"PE {pe} not in any shard")

    @property
    def min_lookahead(self) -> float:
        """Smallest cross-shard lookahead (``inf`` for a single shard)."""
        best = math.inf
        for v, row in enumerate(self.lookahead):
            for w, value in enumerate(row):
                if v != w and value < best:
                    best = value
        return best


def chain_floor(chain: DeviceChain, topo: GridTopology,
                src_pe: int, dst_pe: int) -> float:
    """Static latency floor of the chain for a (src, dst) PE pair.

    A zero-byte ``record=False`` probe: fault devices pass it through,
    nothing is charged, and the transport's stateless
    ``link.transit_time(0)`` is the un-contended minimum — every real
    copy (any size, any queueing, any duplication) arrives at or after
    ``send_time + floor``.
    """
    probe = Message(src_pe=src_pe, dst_pe=dst_pe, size_bytes=0)
    route = chain.resolve(probe, topo, None, record=False)
    return route.pre_transport_delay + route.transport.link.transit_time(0)


def _split_clusters(num_clusters: int, shards: int) -> List[List[int]]:
    """Deal *num_clusters* cluster indices into *shards* contiguous groups."""
    base, extra = divmod(num_clusters, shards)
    groups: List[List[int]] = []
    start = 0
    for index in range(shards):
        width = base + (1 if index < extra else 0)
        groups.append(list(range(start, start + width)))
        start += width
    return groups


def plan_shards(topo: GridTopology, chain: DeviceChain,
                shards: int) -> ShardPlan:
    """Partition the topology into at most *shards* cluster-aligned shards.

    More shards than clusters degenerates gracefully: the plan is
    clamped to one shard per cluster (a single-cluster topology always
    yields one shard — the zero-lookahead degenerate case, which simply
    runs serially inside one worker).
    """
    if shards < 1:
        raise ConfigurationError(f"shards must be >= 1, got {shards}")
    shards = min(shards, topo.num_clusters)
    groups = _split_clusters(topo.num_clusters, shards)
    clusters = topo.clusters
    pe_groups = tuple(
        tuple(pe for ci in group for pe in clusters[ci].pes)
        for group in groups)

    # Cross-shard floors, memoized per cluster pair; PairwiseDelayDevice
    # keys delays by PE pair, so in its presence every pair is probed.
    pairwise = any(type(d).__name__ == "PairwiseDelayDevice"
                   for d in chain.devices)
    cache: Dict[Tuple[int, int], float] = {}
    lookahead = []
    for v, src_pes in enumerate(pe_groups):
        row = []
        for w, dst_pes in enumerate(pe_groups):
            if v == w:
                row.append(math.inf)
                continue
            best = math.inf
            for src in src_pes:
                for dst in dst_pes:
                    key = ((src, dst) if pairwise
                           else (topo.cluster_of(src), topo.cluster_of(dst)))
                    floor = cache.get(key)
                    if floor is None:
                        floor = chain_floor(chain, topo, src, dst)
                        cache[key] = floor
                    if floor < best:
                        best = floor
            row.append(best)
        lookahead.append(tuple(row))

    plan = ShardPlan(shards=pe_groups, lookahead=tuple(lookahead))
    if plan.num_shards > 1 and plan.min_lookahead <= 0.0:
        raise ConfigurationError(
            "cross-shard lookahead floor is not strictly positive; "
            "conservative sharding cannot make progress on this chain")
    return plan


def assert_shardable(chain: DeviceChain, transport_is_fabric: bool) -> None:
    """Reject configurations the sharded runner cannot reproduce exactly.

    Sharded execution requires every cross-shard delay to be a pure
    function of the message — no shared mutable wire state, no RNG
    draws — because the sending shard computes the arrival time alone.
    Stochastic fault devices, jittered links, contended striped pipes
    and the ack/retransmit transport (whose timers react to traffic both
    shards see) therefore stay serial-only.
    """
    if not transport_is_fabric:
        raise ConfigurationError(
            "sharded runs require the plain NetworkFabric transport "
            "(reliable ack/retransmit state is not shard-partitionable)")
    for device in chain.devices:
        kind = type(device).__name__
        if kind == "FaultyDevice":
            raise ConfigurationError(
                "sharded runs cannot include FaultyDevice (its RNG draw "
                "order depends on global traffic interleaving)")
        if kind == "StripedDevice":
            raise ConfigurationError(
                "sharded runs cannot include StripedDevice (stream pipes "
                "are shared mutable state across shards)")
        if isinstance(device, TransportDevice):
            if device.link.jitter is not None:
                raise ConfigurationError(
                    "sharded runs cannot use jittered link "
                    f"{device.link.name!r}")
            if device.pipe is not None:
                raise ConfigurationError(
                    f"sharded runs cannot use contended device "
                    f"{device.name!r} (pipe reservations are shared "
                    "mutable state across shards)")
