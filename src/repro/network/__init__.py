"""VMI-style messaging substrate.

Models the paper's communication stack: a grid/cluster/node/PE topology
(:mod:`~repro.network.topology`), alpha-beta link models
(:mod:`~repro.network.links`), VMI device-driver send chains with
transport, delay, compression and encryption devices
(:mod:`~repro.network.devices`, :mod:`~repro.network.delay`,
:mod:`~repro.network.transform`, :mod:`~repro.network.chain`), WAN
contention (:mod:`~repro.network.contention`), WAN fault injection
(:mod:`~repro.network.faults`), the reliable ack/retransmit transport
(:mod:`~repro.network.reliable`), and the
:class:`~repro.network.fabric.NetworkFabric` that executes message
transits on the simulation engine.
"""

from repro.network.chain import DeviceChain, Route
from repro.network.contention import PipePair, SharedPipe
from repro.network.delay import DelayDevice, PairwiseDelayDevice, cross_cluster_pairs
from repro.network.faults import FaultyDevice, LinkFlap
from repro.network.devices import (
    ChainDevice,
    LanDevice,
    LoopbackDevice,
    ProcessResult,
    ShmemDevice,
    TransportDevice,
    WanDevice,
)
from repro.network.fabric import FabricStats, NetworkFabric
from repro.network.links import (
    LinkModel,
    LognormalJitter,
    NoJitter,
    myrinet_like,
    shared_memory,
    wan_tcp,
)
from repro.network.message import DEFAULT_PRIORITY, WAN_EXPEDITED, Message
from repro.network.reliable import (
    ReliableStats,
    ReliableTransport,
    RetransmitPolicy,
)
from repro.network.topology import Cluster, GridTopology, Node, Processor
from repro.network.transform import CompressionDevice, EncryptionDevice

__all__ = [
    "Message",
    "DEFAULT_PRIORITY",
    "WAN_EXPEDITED",
    "GridTopology",
    "Cluster",
    "Node",
    "Processor",
    "LinkModel",
    "NoJitter",
    "LognormalJitter",
    "myrinet_like",
    "shared_memory",
    "wan_tcp",
    "ChainDevice",
    "TransportDevice",
    "ShmemDevice",
    "LanDevice",
    "WanDevice",
    "LoopbackDevice",
    "ProcessResult",
    "DelayDevice",
    "PairwiseDelayDevice",
    "cross_cluster_pairs",
    "FaultyDevice",
    "LinkFlap",
    "ReliableTransport",
    "RetransmitPolicy",
    "ReliableStats",
    "CompressionDevice",
    "EncryptionDevice",
    "DeviceChain",
    "Route",
    "SharedPipe",
    "PipePair",
    "NetworkFabric",
    "FabricStats",
]
