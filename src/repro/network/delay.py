"""The artificial-latency *delay device* (paper §5.1).

The paper builds its simulated Grid environment by inserting, into the VMI
send chain, "two network drivers with a 'delay device driver' in between":
messages between nodes affiliated with the first (local) driver are
delivered immediately, while messages bound for the "remote cluster" are
intercepted by the delay device, held for a configured time, and then
passed to the wide-area driver.

:class:`DelayDevice` reproduces this exactly: it is a pass-through chain
device that adds a fixed delay to every message whose endpoints satisfy a
predicate (by default: the pair crosses a cluster boundary).  Placing it
*before* the :class:`~repro.network.devices.WanDevice` in the chain yields
the paper's artificial-latency environment.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.network.devices import ChainDevice, ProcessResult
from repro.network.message import Message
from repro.network.topology import GridTopology

PairPredicate = Callable[[int, int, GridTopology], bool]


def cross_cluster_pairs(src_pe: int, dst_pe: int, topo: GridTopology) -> bool:
    """Default predicate: the pair spans two clusters."""
    return not topo.same_cluster(src_pe, dst_pe)


class DelayDevice(ChainDevice):
    """Inject a fixed artificial latency for matching (src, dst) pairs.

    Parameters
    ----------
    delay:
        Extra one-way delay in seconds added to each matching message.
    applies_to:
        Predicate selecting which pairs are delayed; defaults to
        cross-cluster pairs, matching the paper's setup.
    name:
        Trace label.
    """

    #: Injected latency is modeled propagation, not queueing.
    hop_kind = "propagation"

    def __init__(self, delay: float,
                 applies_to: PairPredicate = cross_cluster_pairs,
                 name: str = "delay") -> None:
        if delay < 0:
            raise ConfigurationError(f"negative artificial delay {delay}")
        self.delay = delay
        self.applies_to = applies_to
        self.name = name
        #: Statistics: how many messages were delayed.
        self.messages_delayed = 0

    def process(self, msg: Message, topo: GridTopology,
                rng: Optional[np.random.Generator], *,
                record: bool = True) -> ProcessResult:
        if self.delay > 0 and self.applies_to(msg.src_pe, msg.dst_pe, topo):
            if record:
                self.messages_delayed += 1
            return ProcessResult(message=msg, added_delay=self.delay)
        return ProcessResult(message=msg)

    def reset_stats(self) -> None:
        self.messages_delayed = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"DelayDevice(delay={self.delay!r})"


class PairwiseDelayDevice(ChainDevice):
    """Inject per-(src, dst) delays from an explicit table.

    The paper notes that "arbitrary latencies can be inserted between any
    pair of nodes"; this device realizes the fully general form.  Pairs
    absent from the table pass through undelayed.  Lookups are by PE pair,
    directional (A→B may differ from B→A).
    """

    hop_kind = "propagation"

    def __init__(self, table: dict, name: str = "pairwise-delay") -> None:
        for pair, delay in table.items():
            if len(pair) != 2:
                raise ConfigurationError(f"bad pair key {pair!r}")
            if delay < 0:
                raise ConfigurationError(
                    f"negative delay {delay} for pair {pair!r}")
        self.table = dict(table)
        self.name = name
        self.messages_delayed = 0

    def process(self, msg: Message, topo: GridTopology,
                rng: Optional[np.random.Generator], *,
                record: bool = True) -> ProcessResult:
        delay = self.table.get((msg.src_pe, msg.dst_pe), 0.0)
        if delay > 0:
            if record:
                self.messages_delayed += 1
            return ProcessResult(message=msg, added_delay=delay)
        return ProcessResult(message=msg)

    def reset_stats(self) -> None:
        self.messages_delayed = 0
