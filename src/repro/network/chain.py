"""Send-chain assembly and dispatch.

A :class:`DeviceChain` is an ordered list of chain devices.  Resolving a
message walks the chain in order, accumulating filter-device delays and
transformations, until a transport device claims the message — the VMI
dispatch rule from paper §2.2 ("each driver on the chain examines the
message to determine whether that driver should deliver the message or
whether it should simply send the message to the next device").

Chains are built once per environment; see :mod:`repro.grid.presets` for
the two configurations used in the paper's experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import RoutingError
from repro.network.devices import ChainDevice, TransportDevice
from repro.network.hops import HopSpan
from repro.network.message import Message
from repro.network.topology import GridTopology


@dataclass
class Route:
    """The outcome of resolving one message against a chain."""

    #: Message as transformed by filter devices (wire size may differ).
    message: Message
    #: The transport device that claimed the message.
    transport: TransportDevice
    #: Total delay added by filter devices before transport starts.
    pre_transport_delay: float
    #: A fault device decided the message is lost: no delivery happens.
    dropped: bool = False
    #: Extra wire copies injected by fault devices (0 = just the original).
    duplicates: int = 0


class DeviceChain:
    """An ordered VMI send chain.

    Parameters
    ----------
    devices:
        Chain devices in dispatch order.  At least one must be a
        transport device or resolution will fail for every pair.
    """

    def __init__(self, devices: Sequence[ChainDevice]) -> None:
        self._devices: List[ChainDevice] = list(devices)
        if not self._devices:
            raise RoutingError("empty device chain")

    @property
    def devices(self) -> List[ChainDevice]:
        return list(self._devices)

    def insert_before_transport(self, device: ChainDevice) -> None:
        """Insert a filter device immediately before the first transport.

        This is how the paper wires its delay device: "send and receive
        chains that consist of two network drivers with a 'delay device
        driver' in between".

        Raises
        ------
        RoutingError
            If the chain has no transport device: appending the filter
            at the end would leave it after every possible claim point,
            i.e. unreachable dead code.
        """
        for i, dev in enumerate(self._devices):
            if isinstance(dev, TransportDevice):
                self._devices.insert(i, device)
                return
        raise RoutingError(
            f"cannot insert {device.name!r}: chain has no transport "
            f"device (devices: {[d.name for d in self._devices]})")

    def resolve(self, msg: Message, topo: GridTopology,
                rng: Optional[np.random.Generator] = None, *,
                record: bool = True, now: float = 0.0,
                ledger: Optional[List[HopSpan]] = None) -> Route:
        """Walk the chain until a transport claims *msg*.

        ``record=False`` resolves a model-only probe: no device statistics
        are updated and fault devices behave as pure pass-throughs (see
        :meth:`~repro.network.fabric.NetworkFabric.one_way_time`).

        When a *ledger* is supplied, every filter device that adds delay
        stamps one :class:`~repro.network.hops.HopSpan` on it, anchored
        at *now* (the send instant); the spans telescope so the last
        span's ``arrive`` equals ``now + pre_transport_delay`` exactly.

        Raises
        ------
        RoutingError
            If no device claims the message (misconfigured chain).
        """
        delay = 0.0
        current = msg
        dropped = False
        duplicates = 0
        for dev in self._devices:
            result = dev.process(current, topo, rng, record=record)
            if result.added_delay and ledger is not None:
                ledger.append(HopSpan(
                    device=dev.name, link=dev.name, kind=dev.hop_kind,
                    enqueue=now + delay, dequeue=now + delay,
                    arrive=now + (delay + result.added_delay)))
            delay += result.added_delay
            current = result.message
            dropped = dropped or result.dropped
            duplicates += result.duplicates
            if result.claimed:
                if not isinstance(dev, TransportDevice):
                    raise RoutingError(
                        f"device {dev.name!r} claimed a message but is not "
                        "a transport device")
                return Route(message=current, transport=dev,
                             pre_transport_delay=delay,
                             dropped=dropped, duplicates=duplicates)
        raise RoutingError(
            f"no device in chain claims PE {msg.src_pe} -> PE {msg.dst_pe} "
            f"(devices: {[d.name for d in self._devices]})")

    def transports(self) -> List[TransportDevice]:
        """All transport devices in the chain, in order."""
        return [d for d in self._devices if isinstance(d, TransportDevice)]

    def reset_stats(self) -> None:
        """Clear statistics on every device that keeps them."""
        for dev in self._devices:
            reset = getattr(dev, "reset_stats", None)
            if reset is not None:
                reset()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "DeviceChain(" + " -> ".join(d.name for d in self._devices) + ")"
