"""VMI-style device drivers.

The Virtual Machine Interface (paper §2.2) organizes messaging into *send
and receive chains* of dynamically loaded device drivers.  As a message
travels down the chain, each driver either **claims** it for delivery,
**transforms** it (compression, encryption, artificial delay) and passes
it on, or simply passes it on untouched.

Every driver here implements :class:`ChainDevice`.  Transport devices
(:class:`ShmemDevice`, :class:`LanDevice`, :class:`WanDevice`) terminate
the chain when their reachability predicate matches the (src, dst) pair;
filter devices (see :mod:`repro.network.delay` and
:mod:`repro.network.transform`) never terminate it.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.network.contention import PipePair
from repro.network.hops import HopSpan
from repro.network.links import LinkModel
from repro.network.message import Message
from repro.network.topology import GridTopology


class ProcessResult:
    """Outcome of one device inspecting a message.

    Allocated once per device per message on the send path, so this is a
    ``__slots__`` class with a straight-line ``__init__``.

    Attributes
    ----------
    message:
        The (possibly transformed) message to hand to the next device.
    added_delay:
        Seconds this device added *before* transport (delay/compute costs
        of filter devices).
    claimed:
        ``True`` when this device will deliver the message itself; the
        chain stops here and the fabric asks the device for transit time.
    dropped:
        ``True`` when a fault device decided the message is lost on the
        wire: the fabric never posts a delivery for it.
    duplicates:
        Number of *extra* wire copies a fault device injected; the fabric
        posts one additional delivery per copy.
    """

    __slots__ = ("message", "added_delay", "claimed", "dropped",
                 "duplicates")

    def __init__(self, message: Message, added_delay: float = 0.0,
                 claimed: bool = False, dropped: bool = False,
                 duplicates: int = 0) -> None:
        self.message = message
        self.added_delay = added_delay
        self.claimed = claimed
        self.dropped = dropped
        self.duplicates = duplicates


class ChainDevice:
    """Base class for all chain devices."""

    #: Display name; transport devices reuse their link's name by default.
    name: str = "device"
    #: Hop-ledger kind stamped for this device's added delay (filter
    #: devices only; delay devices override with ``"propagation"``).
    hop_kind: str = "device_queue"

    def process(self, msg: Message, topo: GridTopology,
                rng: Optional[np.random.Generator], *,
                record: bool = True) -> ProcessResult:
        """Inspect *msg*; claim, transform or pass it through.

        ``record=False`` marks a model-only probe (see
        :meth:`~repro.network.fabric.NetworkFabric.one_way_time`): the
        device must not update statistics, draw randomness, or inject
        faults — only report the deterministic part of its behaviour.
        """
        raise NotImplementedError

    def transit(self, msg: Message, topo: GridTopology, now: float,
                rng: Optional[np.random.Generator],
                ledger: Optional[List[HopSpan]] = None) -> float:
        """For claiming devices: seconds from transport start to delivery.

        *now* is the virtual time transport starts (after any filter
        delays); contended transports use it to queue on their pipe.
        When a *ledger* is supplied the device appends one
        :class:`~repro.network.hops.HopSpan` per wire lane it used.
        """
        raise NotImplementedError(f"{self.name} is not a transport device")


class TransportDevice(ChainDevice):
    """A terminal device that moves bytes over one link class.

    Parameters
    ----------
    link:
        Performance model for the link.
    pipe:
        Optional contention model; when present, the message's
        serialization time is serialized FIFO per direction.
    """

    def __init__(self, link: LinkModel, pipe: Optional[PipePair] = None) -> None:
        self.link = link
        self.pipe = pipe
        self.name = link.name
        #: Statistics: messages and bytes carried.
        self.messages_carried = 0
        self.bytes_carried = 0

    # subclasses override ------------------------------------------------
    def reaches(self, src_pe: int, dst_pe: int, topo: GridTopology) -> bool:
        """Can this device deliver between the two PEs?"""
        raise NotImplementedError

    # common behaviour ------------------------------------------------------
    def process(self, msg: Message, topo: GridTopology,
                rng: Optional[np.random.Generator], *,
                record: bool = True) -> ProcessResult:
        if self.reaches(msg.src_pe, msg.dst_pe, topo):
            return ProcessResult(message=msg, claimed=True)
        return ProcessResult(message=msg)

    def transit(self, msg: Message, topo: GridTopology, now: float,
                rng: Optional[np.random.Generator],
                ledger: Optional[List[HopSpan]] = None) -> float:
        self.messages_carried += 1
        self.bytes_carried += msg.size_bytes
        base = self.link.transit_time(msg.size_bytes, rng)
        if self.pipe is None:
            if ledger is not None:
                ledger.append(HopSpan(
                    device=self.name, link=self.name, kind="wire",
                    enqueue=now, dequeue=now, arrive=now + base,
                    ser_s=self.link.serialization_time(msg.size_bytes)))
            return base
        # Contended path: serialization queues FIFO, propagation pipelines.
        ser = self.link.serialization_time(msg.size_bytes)
        pipe = self.pipe.direction(topo.cluster_of(msg.src_pe),
                                   topo.cluster_of(msg.dst_pe))
        start = pipe.reserve(now, ser)
        queue_wait = start - now
        if ledger is not None:
            ledger.append(HopSpan(
                device=pipe.name, link=self.name, kind="wire",
                enqueue=now, dequeue=start, arrive=now + (queue_wait + base),
                ser_s=ser, queue_depth=pipe.last_queue_depth))
        return queue_wait + base

    def reset_stats(self) -> None:
        self.messages_carried = 0
        self.bytes_carried = 0
        if self.pipe is not None:
            self.pipe.reset()


class ShmemDevice(TransportDevice):
    """Delivers between PEs on the same physical node."""

    def reaches(self, src_pe: int, dst_pe: int, topo: GridTopology) -> bool:
        return topo.same_node(src_pe, dst_pe)


class LanDevice(TransportDevice):
    """Delivers between PEs within one cluster (Myrinet/InfiniBand class)."""

    def reaches(self, src_pe: int, dst_pe: int, topo: GridTopology) -> bool:
        return topo.same_cluster(src_pe, dst_pe)


class WanDevice(TransportDevice):
    """Delivers between clusters over the wide area (TCP class)."""

    def reaches(self, src_pe: int, dst_pe: int, topo: GridTopology) -> bool:
        return not topo.same_cluster(src_pe, dst_pe)


class LoopbackDevice(TransportDevice):
    """Delivers a PE's messages to itself at (near) zero cost.

    The runtime still routes self-sends through the fabric so that event
    ordering and tracing stay uniform.
    """

    def reaches(self, src_pe: int, dst_pe: int, topo: GridTopology) -> bool:
        return src_pe == dst_pe
