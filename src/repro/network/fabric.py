"""The network fabric: couples chains to the event engine.

:class:`NetworkFabric` is the single entry point the runtime uses to move
a message between processors.  It resolves the message against the VMI
send chain, charges filter + transport time (including any contention
queueing), and posts a delivery event on the simulation engine.

Delivery invokes a callback rather than touching PE queues directly so the
network layer stays ignorant of the runtime layer above it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from repro.network.chain import DeviceChain
from repro.network.message import Message
from repro.network.topology import GridTopology
from repro.sim.engine import Engine
from repro.sim.trace import TraceSink

DeliverFn = Callable[[Message], None]


@dataclass
class FabricStats:
    """Aggregate traffic statistics, grouped by transport device name."""

    messages: Dict[str, int] = field(default_factory=dict)
    bytes: Dict[str, int] = field(default_factory=dict)
    #: Seconds of artificial/filter delay charged in total.
    filter_delay_total: float = 0.0
    #: Messages lost on the wire (fault injection), by transport name.
    dropped: Dict[str, int] = field(default_factory=dict)
    #: Extra wire copies injected (fault injection), by transport name.
    duplicated: Dict[str, int] = field(default_factory=dict)

    def record(self, transport_name: str, size: int, filter_delay: float) -> None:
        self.messages[transport_name] = self.messages.get(transport_name, 0) + 1
        self.bytes[transport_name] = self.bytes.get(transport_name, 0) + size
        self.filter_delay_total += filter_delay

    def record_drop(self, transport_name: str) -> None:
        self.dropped[transport_name] = self.dropped.get(transport_name, 0) + 1

    def record_duplicates(self, transport_name: str, copies: int) -> None:
        self.duplicated[transport_name] = (
            self.duplicated.get(transport_name, 0) + copies)

    @property
    def total_dropped(self) -> int:
        return sum(self.dropped.values())

    @property
    def total_duplicated(self) -> int:
        return sum(self.duplicated.values())

    @property
    def total_messages(self) -> int:
        return sum(self.messages.values())

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes.values())

    def as_metrics(self) -> Dict[str, float]:
        """Flat ``fabric.*`` metric names for the observability registry."""
        out: Dict[str, float] = {
            "fabric.filter_delay_total_s": self.filter_delay_total,
            "fabric.messages_total": self.total_messages,
            "fabric.bytes_total": self.total_bytes,
            "fabric.dropped_total": self.total_dropped,
            "fabric.duplicated_total": self.total_duplicated,
        }
        for name, n in self.messages.items():
            out[f"fabric.{name}.messages"] = n
        for name, n in self.bytes.items():
            out[f"fabric.{name}.bytes"] = n
        for name, n in self.dropped.items():
            out[f"fabric.{name}.dropped"] = n
        for name, n in self.duplicated.items():
            out[f"fabric.{name}.duplicated"] = n
        return out


class NetworkFabric:
    """Routes messages through a device chain on a simulation engine.

    Parameters
    ----------
    engine:
        The discrete-event engine providing the clock.
    topology:
        Machine layout used for chain dispatch.
    chain:
        VMI send chain (shared by all PEs; per-PE chains are not needed
        for the paper's experiments).
    rng:
        Optional RNG consulted by jittered links; omit for fully
        deterministic artificial-latency runs.
    tracer:
        Optional trace sink (a :class:`~repro.sim.trace.Tracer`,
        :class:`~repro.sim.trace.TraceAggregator`, or
        :class:`~repro.sim.trace.TraceFanout`) receiving send/deliver
        events.
    """

    def __init__(self, engine: Engine, topology: GridTopology,
                 chain: DeviceChain,
                 rng: Optional[np.random.Generator] = None,
                 tracer: Optional[TraceSink] = None) -> None:
        self.engine = engine
        self.topology = topology
        self.chain = chain
        self.rng = rng
        self.tracer = tracer
        self.stats = FabricStats()
        #: Wire copies posted but not yet delivered (live gauges, used by
        #: the telemetry sampler; dropped messages never count).
        self.in_flight = 0
        self.wan_in_flight = 0
        #: Cumulative cross-WAN wire copies put on the wire (denominator
        #: for the sampler's retransmit-rate series).
        self.wan_sent = 0
        #: Sharded-PDES hooks, both ``None`` in serial runs (the hot
        #: path then pays one predictable branch).  ``shard_owned`` is
        #: the set of PEs this process simulates; ``shard_export`` takes
        #: ``(arrival, msg, wire_bytes)`` for each wire copy bound for a
        #: PE another shard owns.  Sends *from* a non-owned PE are
        #: skipped entirely — every shard replays the identical launch
        #: sequence, and the shard owning the source performs the send.
        self.shard_owned = None
        self.shard_export = None

    def send(self, msg: Message, deliver: DeliverFn) -> float:
        """Dispatch *msg*; *deliver* runs at the computed arrival time.

        Returns the absolute virtual arrival time (useful for tests) of
        the first wire copy, or ``math.inf`` when fault injection dropped
        the message (nothing will ever be delivered).

        Fault devices in the chain may also duplicate the message; every
        extra copy is transported independently (its own jitter draw and
        contention slot) and invokes *deliver* again on arrival —
        suppressing duplicates is the reliable layer's job, not ours.
        """
        if msg.size_bytes < 0:
            # The fabric is the single choke point every message passes
            # through, so declared sizes are validated once here instead
            # of in the per-message ``Message.__init__`` hot path.
            raise ValueError(f"negative message size {msg.size_bytes}")
        owned = self.shard_owned
        if owned is not None and msg.src_pe not in owned:
            return math.inf
        now = self.engine.now
        msg.sent_at = now
        crossed_wan = self.topology.crosses_wan(msg.src_pe, msg.dst_pe)
        msg.crossed_wan = crossed_wan

        tracer = self.tracer
        # Flight recorder: collect per-device hop spans only when a live
        # sink wants them.  With tracing off this send takes the exact
        # code path (and float expressions) of the seed, so virtual-time
        # results are bit-identical with observability disabled.
        want_hops = (tracer is not None and tracer.enabled
                     and hasattr(tracer, "message_hops"))
        ledger: Optional[list] = [] if want_hops else None
        route = self.chain.resolve(msg, self.topology, self.rng,
                                   now=now, ledger=ledger)
        wire_msg = route.message

        if tracer is not None:
            tracer.message_sent(now, msg.src_pe, msg.dst_pe,
                                wire_msg.size_bytes, msg.tag,
                                crossed_wan, seq=msg.seq,
                                cause=msg.cause, ack_for=msg.ack_for,
                                src_obj=msg.src_obj, dst_obj=msg.dst_obj)

        if route.dropped:
            self.stats.record_drop(route.transport.name)
            if tracer is not None:
                tracer.message_dropped(now, msg.src_pe, msg.dst_pe,
                                       wire_msg.size_bytes, msg.tag,
                                       crossed_wan, seq=msg.seq,
                                       cause=msg.cause,
                                       ack_for=msg.ack_for,
                                       src_obj=msg.src_obj,
                                       dst_obj=msg.dst_obj)
            return math.inf

        if route.duplicates:
            self.stats.record_duplicates(route.transport.name,
                                         route.duplicates)

        engine = self.engine
        stats = self.stats
        transport_start = now + route.pre_transport_delay
        first_arrival = math.inf
        for _copy in range(1 + route.duplicates):
            if want_hops:
                copy_ledger: list = list(ledger)
                transit = route.transport.transit(
                    wire_msg, self.topology, transport_start, self.rng,
                    ledger=copy_ledger)
            else:
                copy_ledger = None
                transit = route.transport.transit(
                    wire_msg, self.topology, transport_start, self.rng)
            arrival = transport_start + transit
            if arrival < first_arrival:
                first_arrival = arrival
            if copy_ledger is not None:
                # One flight-recorder record per *wire copy* actually
                # put on the wire (drops returned earlier; duplicates
                # each get their own ledger with their own jitter and
                # contention spans).
                tracer.message_hops(
                    now, msg.src_pe, msg.dst_pe, wire_msg.size_bytes,
                    msg.tag, crossed_wan, msg.seq, arrival,
                    tuple(copy_ledger), relay_hop=msg.relay_hop,
                    arq_attempt=msg.arq_attempt)
            stats.record(route.transport.name, wire_msg.size_bytes,
                         route.pre_transport_delay)
            if owned is not None and msg.dst_pe not in owned:
                # Cross-shard copy: the send (chain stats, trace event,
                # wan_sent) is accounted here; the owning shard injects
                # the delivery and carries the in-flight gauges.
                if crossed_wan:
                    self.wan_sent += 1
                self.shard_export(arrival, msg, wire_msg.size_bytes)
                continue
            self.in_flight += 1
            if crossed_wan:
                self.wan_in_flight += 1
                self.wan_sent += 1
            # Bound methods + args tuples, not per-copy closures: the
            # delivery post is once-per-wire-copy, so allocation here is
            # pure per-event overhead.
            order = self._delivery_order(msg)
            if tracer is not None:
                engine.post(arrival, self._deliver_traced,
                            args=(msg, arrival, wire_msg.size_bytes,
                                  deliver), order=order)
            else:
                engine.post(arrival, self._deliver_plain,
                            args=(msg, deliver), order=order)
        return first_arrival

    def _delivery_order(self, msg: Message) -> Optional[tuple]:
        """Tiebreak key for a delivery post (ordered-ties mode only).

        ``(0, sent_at, src_pe, seq)`` is a pure function of the message,
        identical whichever shard computes it: the ``0`` ranks deliveries
        ahead of other same-instant events, ``sent_at`` reproduces the
        serial property that deliveries post in send order, and the
        sender's per-process ``seq`` orders same-source ties (every
        source PE's messages are created by exactly one shard, in the
        same relative order as serial).
        """
        if not self.engine._ordered:
            return None
        seq = msg.seq
        return (0, msg.sent_at, msg.src_pe, -1 if seq is None else seq)

    def inject(self, arrival: float, msg: Message, wire_bytes: int,
               deliver: DeliverFn) -> None:
        """Land a wire copy exported by another shard.

        The sending shard already resolved the chain, charged transit and
        recorded the send; this side only posts the delivery event (and
        owns the in-flight gauges for the copy from now on).  *arrival*
        is guaranteed ``>= engine.now`` by the conservative sync windows.
        """
        self.in_flight += 1
        if msg.crossed_wan:
            self.wan_in_flight += 1
        order = self._delivery_order(msg)
        if self.tracer is not None:
            self.engine.post(arrival, self._deliver_traced,
                             args=(msg, arrival, wire_bytes, deliver),
                             order=order)
        else:
            self.engine.post(arrival, self._deliver_plain,
                             args=(msg, deliver), order=order)

    def _deliver_plain(self, msg: Message, deliver: DeliverFn) -> None:
        """Fire one wire copy's arrival (tracing off)."""
        self._land(msg)
        deliver(msg)

    def _deliver_traced(self, msg: Message, arrival: float,
                        wire_bytes: int, deliver: DeliverFn) -> None:
        """Fire one wire copy's arrival, recording the delivery event."""
        self._land(msg)
        self.tracer.message_delivered(arrival, msg.src_pe, msg.dst_pe,
                                      wire_bytes, msg.tag,
                                      msg.crossed_wan, seq=msg.seq,
                                      cause=msg.cause,
                                      ack_for=msg.ack_for,
                                      src_obj=msg.src_obj,
                                      dst_obj=msg.dst_obj)
        deliver(msg)

    def _land(self, msg: Message) -> None:
        """Book-keep one wire copy leaving the wire (delivery instant)."""
        self.in_flight -= 1
        if msg.crossed_wan:
            self.wan_in_flight -= 1

    def one_way_time(self, src_pe: int, dst_pe: int, size_bytes: int) -> float:
        """Model-only query: transit time for a hypothetical message.

        Does not consume contention capacity, does not draw jitter, does
        not count in statistics.  Used by analytic sanity checks and by
        load balancers estimating communication cost.
        """
        probe = Message(src_pe=src_pe, dst_pe=dst_pe, size_bytes=size_bytes)
        route = self.chain.resolve(probe, self.topology, None, record=False)
        return (route.pre_transport_delay
                + route.transport.link.transit_time(route.message.size_bytes))

    def reset_stats(self) -> None:
        """Clear fabric and device statistics (between benchmark reps)."""
        self.stats = FabricStats()
        self.chain.reset_stats()
