"""WAN fault injection: loss, duplication, reordering, link flaps.

Real wide-area Grid links are not the well-behaved delay lines of the
paper's §5.1 testbed: packets get dropped at congested routers, TCP-level
middleboxes duplicate segments, multi-path routing reorders them, and
whole links go dark for seconds at a time (the failure modes MPWide and
MPICH-G2 exist to survive).  :class:`FaultyDevice` injects all four as
one more VMI chain filter — the same architectural slot the paper's
delay device occupies — so every experiment can be re-run over a hostile
WAN by adding a single device to the chain.

Fault decisions come from the device's *own* seeded RNG stream (see
:mod:`repro.sim.rand`), not the fabric's jitter stream, so

* two same-seed runs make bit-identical fault decisions, and
* adding the device does not perturb jitter draws of other devices.

Reordering is modelled as an extra in-flight delay: a reordered message
overtakes nothing, it is *overtaken* — later sends on the same pair can
arrive first, which is exactly the observable effect of packet-level
reordering at this abstraction level.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.network.delay import PairPredicate, cross_cluster_pairs
from repro.network.devices import ChainDevice, ProcessResult
from repro.network.message import Message
from repro.network.topology import GridTopology
from repro.sim.rand import RandomStreams


class LinkFlap:
    """A schedule of virtual-time windows during which the link is down.

    Messages entering a fault device while a window is open are dropped
    unconditionally (the retransmit layer above rides out the outage —
    or gives up with a :class:`~repro.errors.RetransmitError` when the
    outage outlasts its retry budget).

    Parameters
    ----------
    windows:
        ``(start, end)`` pairs in seconds of virtual time; they must be
        well-formed (``0 <= start < end``) but need not be sorted.
    """

    def __init__(self, windows: Sequence[Tuple[float, float]]) -> None:
        for start, end in windows:
            if start < 0 or end <= start:
                raise ConfigurationError(
                    f"malformed flap window ({start}, {end})")
        # Coalesce overlapping/touching windows: the bisect in down_at
        # assumes disjoint windows (only the nearest start is checked).
        merged: List[Tuple[float, float]] = []
        for s, e in sorted((float(s), float(e)) for s, e in windows):
            if merged and s <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], e))
            else:
                merged.append((s, e))
        self.windows: List[Tuple[float, float]] = merged
        self._starts = [s for s, _ in self.windows]

    @classmethod
    def periodic(cls, period: float, downtime: float, *, start: float = 0.0,
                 count: int = 10) -> "LinkFlap":
        """*count* outages of *downtime* seconds, one every *period*."""
        if period <= 0 or downtime <= 0 or downtime >= period:
            raise ConfigurationError(
                f"need 0 < downtime < period, got period={period}, "
                f"downtime={downtime}")
        return cls([(start + i * period, start + i * period + downtime)
                    for i in range(count)])

    def down_at(self, t: float) -> bool:
        """Is the link down at virtual time *t*?"""
        i = bisect_right(self._starts, t) - 1
        return i >= 0 and t < self.windows[i][1]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"LinkFlap({self.windows!r})"


class FaultyDevice(ChainDevice):
    """Drop, duplicate, reorder, and flap-drop matching messages.

    Parameters
    ----------
    drop:
        Probability a matching message is silently lost on the wire.
    dup:
        Probability a surviving message is delivered twice.
    reorder:
        Probability a surviving message is held back by an extra
        exponentially-distributed delay (mean ``reorder_delay``), letting
        later sends overtake it.
    reorder_delay:
        Mean of the reordering hold-back in seconds.  Required when
        ``reorder > 0``.
    rng:
        The device's private random stream.  When omitted, one is derived
        from *seed* via :class:`~repro.sim.rand.RandomStreams` (stream
        name ``"wan-faults"``) so same-seed runs fault identically.
    applies_to:
        Which (src, dst) pairs are subject to faults; defaults to
        cross-cluster pairs (the WAN), leaving local traffic pristine.
    flap:
        Optional :class:`LinkFlap` outage schedule, keyed on the
        message's fabric-stamped ``sent_at`` time.
    """

    def __init__(self, drop: float = 0.0, dup: float = 0.0,
                 reorder: float = 0.0, *,
                 reorder_delay: Optional[float] = None,
                 rng: Optional[np.random.Generator] = None,
                 seed: int = 0,
                 applies_to: PairPredicate = cross_cluster_pairs,
                 flap: Optional[LinkFlap] = None,
                 name: str = "faulty") -> None:
        for label, rate in (("drop", drop), ("dup", dup),
                            ("reorder", reorder)):
            if not (0.0 <= rate <= 1.0):
                raise ConfigurationError(
                    f"{label} rate {rate} not in [0, 1]")
        if reorder > 0 and (reorder_delay is None or reorder_delay <= 0):
            raise ConfigurationError(
                "reorder > 0 requires a positive reorder_delay")
        self.drop = drop
        self.dup = dup
        self.reorder = reorder
        self.reorder_delay = reorder_delay
        self.rng = rng if rng is not None else \
            RandomStreams(seed).get("wan-faults")
        self.applies_to = applies_to
        self.flap = flap
        self.name = name
        #: Statistics (random drops and flap drops are counted apart).
        self.messages_dropped = 0
        self.messages_flap_dropped = 0
        self.messages_duplicated = 0
        self.messages_reordered = 0

    def process(self, msg: Message, topo: GridTopology,
                rng: Optional[np.random.Generator], *,
                record: bool = True) -> ProcessResult:
        # Probes must neither advance the fault stream nor count; local
        # traffic must not consume draws either, or adding a LAN message
        # would change which WAN message gets dropped.
        if not record or not self.applies_to(msg.src_pe, msg.dst_pe, topo):
            return ProcessResult(message=msg)

        if (self.flap is not None and msg.sent_at is not None
                and self.flap.down_at(msg.sent_at)):
            self.messages_flap_dropped += 1
            return ProcessResult(message=msg, dropped=True)

        if self.drop > 0 and self.rng.random() < self.drop:
            self.messages_dropped += 1
            return ProcessResult(message=msg, dropped=True)

        duplicates = 0
        if self.dup > 0 and self.rng.random() < self.dup:
            self.messages_duplicated += 1
            duplicates = 1

        delay = 0.0
        if self.reorder > 0 and self.rng.random() < self.reorder:
            self.messages_reordered += 1
            delay = float(self.rng.exponential(self.reorder_delay))

        return ProcessResult(message=msg, added_delay=delay,
                             duplicates=duplicates)

    def reset_stats(self) -> None:
        self.messages_dropped = 0
        self.messages_flap_dropped = 0
        self.messages_duplicated = 0
        self.messages_reordered = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"FaultyDevice(drop={self.drop}, dup={self.dup}, "
                f"reorder={self.reorder})")
