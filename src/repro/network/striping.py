"""Striped wide-area transport (MPWide-style parallel TCP streams).

A single TCP stream over a long fat pipe is window-limited: the
achievable rate is roughly ``window / RTT``, far below the physical
capacity of the path.  Message-passing libraries for wide-area runs
(MPWide, GridFTP's parallel mode) therefore split each large message
into chunks sent round-robin over *N* concurrent streams, aggregating
roughly ``N×`` the single-stream rate until the path itself saturates.

:class:`StripedDevice` models that: it claims the same (src, dst) pairs
as :class:`~repro.network.devices.WanDevice`, but its ``link.bandwidth``
is interpreted as the *per-stream* achievable rate.  A message of S
bytes is split into up to ``streams`` round-robin chunks; each chunk
occupies one stream for its serialization time (chunks queue FIFO per
stream — that is the pacing/congestion state), then propagates with the
link's latency.  The message is delivered when its **last** chunk
arrives.  Small messages (below ``min_chunk_bytes``) ride a single
stream and see exactly the plain-WAN cost, so striping never penalizes
the latency-bound traffic the paper cares about.

The device composes unchanged with everything that wraps a transport:
:class:`~repro.network.chain.DeviceChain` dispatch, delay/fault filter
devices ahead of it, and :class:`~repro.network.reliable.ReliableTransport`
above the fabric.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.network.contention import SharedPipe
from repro.network.devices import TransportDevice
from repro.network.hops import HopSpan
from repro.network.links import LinkModel
from repro.network.message import Message
from repro.network.topology import GridTopology


class _DirectionState:
    """Per-(src cluster, dst cluster) stream occupancy and round-robin."""

    __slots__ = ("streams", "next_stream")

    def __init__(self, name: str, num_streams: int) -> None:
        self.streams: List[SharedPipe] = [
            SharedPipe(name=f"{name}/s{i}") for i in range(num_streams)
        ]
        self.next_stream = 0


class StripedDevice(TransportDevice):
    """WAN transport striping each message over parallel streams.

    Parameters
    ----------
    link:
        Per-stream performance model: ``bandwidth`` is what **one** TCP
        stream achieves over this path; latency/overhead apply per chunk.
    streams:
        Number of concurrent streams per direction (``1`` degenerates to
        a plain, uncontended :class:`WanDevice`).
    min_chunk_bytes:
        Never split below this chunk size — tiny chunks would pay the
        per-chunk overhead without buying any aggregation.
    """

    def __init__(self, link: LinkModel, streams: int = 4,
                 min_chunk_bytes: int = 4096) -> None:
        super().__init__(link)
        if streams < 1:
            raise ConfigurationError(f"streams must be >= 1, got {streams}")
        if min_chunk_bytes < 1:
            raise ConfigurationError(
                f"min_chunk_bytes must be >= 1, got {min_chunk_bytes}")
        self.streams = streams
        self.min_chunk_bytes = min_chunk_bytes
        self.name = f"{link.name}x{streams}"
        #: Total chunks put on the wire (>= messages_carried).
        self.chunks_sent = 0
        self._directions: Dict[Tuple[int, int], _DirectionState] = {}

    def reaches(self, src_pe: int, dst_pe: int, topo: GridTopology) -> bool:
        return not topo.same_cluster(src_pe, dst_pe)

    def _direction(self, src_cluster: int, dst_cluster: int
                   ) -> _DirectionState:
        key = (src_cluster, dst_cluster)
        state = self._directions.get(key)
        if state is None:
            state = _DirectionState(
                f"{self.name}[{src_cluster}->{dst_cluster}]", self.streams)
            self._directions[key] = state
        return state

    def transit(self, msg: Message, topo: GridTopology, now: float,
                rng: Optional[np.random.Generator],
                ledger: Optional[List[HopSpan]] = None) -> float:
        self.messages_carried += 1
        self.bytes_carried += msg.size_bytes
        size = msg.size_bytes
        n_chunks = min(self.streams, max(1, size // self.min_chunk_bytes))
        self.chunks_sent += n_chunks

        state = self._direction(topo.cluster_of(msg.src_pe),
                                topo.cluster_of(msg.dst_pe))
        base, rem = divmod(size, n_chunks)
        last_arrival = now
        link = self.link
        for i in range(n_chunks):
            chunk = base + (1 if i < rem else 0)
            stream_idx = (state.next_stream + i) % len(state.streams)
            stream = state.streams[stream_idx]
            ser = link.serialization_time(chunk)
            start = stream.reserve(now, ser)
            arrival = (start + ser + link.latency
                       + link.per_message_overhead)
            if link.jitter is not None and rng is not None:
                arrival += link.jitter.sample(rng)
            if ledger is not None:
                ledger.append(HopSpan(
                    device=stream.name, link=self.name, kind="stream",
                    enqueue=now, dequeue=start, arrive=arrival,
                    ser_s=ser, queue_depth=stream.last_queue_depth,
                    stream=stream_idx))
            if arrival > last_arrival:
                last_arrival = arrival
        state.next_stream = ((state.next_stream + n_chunks)
                             % len(state.streams))
        return last_arrival - now

    def queue_delay_total(self) -> float:
        """Aggregate chunk queueing delay across all streams/directions."""
        return sum(s.queue_delay_total
                   for state in self._directions.values()
                   for s in state.streams)

    def in_flight(self, now: float) -> int:
        """Chunks occupying (or queued on) any stream at *now*.

        Mirrors the fabric's ``wan_in_flight`` gauge at stream
        granularity: a chunk counts from its reservation until its
        serialization window ends.
        """
        return sum(s.in_flight(now)
                   for state in self._directions.values()
                   for s in state.streams)

    def stream_gauges(self) -> Dict[str, Dict[str, float]]:
        """Per-stream occupancy gauges keyed by stream lane name.

        Each value carries the stream's ``reservations`` (chunks
        carried), ``queue_delay_total`` and ``high_water`` occupancy —
        the observability surface of the MPWide-style pacing state.
        """
        out: Dict[str, Dict[str, float]] = {}
        for state in self._directions.values():
            for s in state.streams:
                out[s.name] = {
                    "reservations": s.reservations,
                    "queue_delay_total": s.queue_delay_total,
                    "high_water": s.high_water,
                }
        return out

    def reset_stats(self) -> None:
        super().reset_stats()
        self.chunks_sent = 0
        self._directions.clear()
