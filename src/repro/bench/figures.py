"""ASCII rendering of the paper's figures.

Benchmark runs print these so a terminal shows the same curves the paper
plots: execution time per step against injected one-way latency, one
line per virtualization degree (Figure 3) or per processor count
(Figure 4).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.bench.records import ExperimentPoint, Series, group_series


def render_series(series: Sequence[Series], title: str,
                  width: int = 60, height: int = 16,
                  x_label: str = "one-way latency (ms)",
                  y_label: str = "ms/step") -> str:
    """A minimal multi-line scatter/line plot in ASCII.

    X is plotted on a linear scale of the sorted distinct x values
    (matching the paper's evenly spaced latency ticks); Y is linear.
    """
    if not series:
        return f"{title}\n(no data)"
    xs = sorted({x for s in series for x in s.x})
    ys = [y for s in series for y in s.y]
    y_min, y_max = min(ys), max(ys)
    if y_max <= y_min:
        y_max = y_min + 1.0
    x_pos = {x: (i * (width - 1)) // max(len(xs) - 1, 1)
             for i, x in enumerate(xs)}

    grid = [[" "] * width for _ in range(height)]
    markers = "ox+*#@%&"
    for si, s in enumerate(series):
        mark = markers[si % len(markers)]
        for x, y in zip(s.x, s.y):
            col = x_pos[x]
            row = height - 1 - int((y - y_min) / (y_max - y_min)
                                   * (height - 1))
            grid[row][col] = mark

    lines = [title]
    for r, row in enumerate(grid):
        y_tick = y_max - r * (y_max - y_min) / (height - 1)
        lines.append(f"{y_tick:9.2f} |" + "".join(row))
    lines.append(" " * 10 + "+" + "-" * width)
    tick_line = [" "] * width
    for x in xs:
        label = f"{x:g}"
        col = min(x_pos[x], width - len(label))
        for i, ch in enumerate(label):
            tick_line[col + i] = ch
    lines.append(" " * 11 + "".join(tick_line) + f"   [{x_label}]")
    legend = "   ".join(f"{markers[i % len(markers)]}={s.label}"
                        for i, s in enumerate(series))
    lines.append(f"  y: {y_label}    {legend}")
    return "\n".join(lines)


def render_fig3_panel(points: List[ExperimentPoint], pes: int) -> str:
    """One panel of Figure 3: the given PE count's latency sweep."""
    panel = [p for p in points if p.pes == pes and p.experiment == "fig3"]
    series = group_series(panel, by="objects")
    return render_series(
        series,
        title=f"Figure 3 ({pes} PEs) - stencil time/step vs latency",
    )


def render_fig3_collectives(points: List[ExperimentPoint],
                            app: str = "collectives") -> str:
    """Figure 3c: collective time/step vs latency, one line per routing
    variant (flat / hier / hier+striped).

    The variant lives in ``extra["variant"]``, which ``group_series``
    cannot reach, so the series are assembled by hand.
    """
    panel = [p for p in points
             if p.experiment == "fig3c" and p.app == app]
    by_variant = {}
    for p in sorted(panel, key=lambda p: p.latency_ms):
        label = p.extra.get("variant", "?")
        series = by_variant.get(label)
        if series is None:
            series = by_variant[label] = Series(label=label)
        series.append(p.latency_ms, p.time_per_step_ms)
    # Fixed display order: the baseline first, then the improvements.
    order = {"flat": 0, "hier": 1, "hier+striped": 2}
    series_list = sorted(by_variant.values(),
                         key=lambda s: order.get(s.label, 99))
    return render_series(
        series_list,
        title=f"Figure 3c ({app}) - collective time/step vs latency "
              "by routing",
    )


def render_fig4(points: List[ExperimentPoint]) -> str:
    """Figure 4: LeanMD time/step vs latency, one line per PE count."""
    fig = [p for p in points if p.experiment == "fig4"]
    series = group_series(fig, by="pes", y="time_per_step")
    return render_series(
        series,
        title="Figure 4 - LeanMD time/step (s) vs latency",
        y_label="s/step",
    )


def knee_latency_ms(series: Series, tolerance: float = 1.30) -> float:
    """The largest swept latency still within *tolerance* of the
    zero/lowest-latency step time — the length of the "near-horizontal
    section" the paper reads off these plots.
    """
    if not series.x:
        return 0.0
    pairs = sorted(zip(series.x, series.y))
    base = pairs[0][1]
    knee = pairs[0][0]
    for x, y in pairs:
        if y <= tolerance * base:
            knee = x
        else:
            break
    return knee
