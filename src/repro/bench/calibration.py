"""Calibration constants and their provenance.

Every modeled cost in the library is anchored to a number the paper (or
its era's hardware) provides.  This module centralizes the derivations
so reviewers can audit them and tests can assert the anchors still hold.

Anchors
-------
Stencil (Table 1, 2 PEs / 16 objects, 1.725 ms latency -> 75.05 ms/step):
    2 PEs hold 2048*2048/2 = 2,097,152 cells each; a 512x512 block's
    working set (two padded float64 arrays ~4.2 MiB) mostly fits the
    Itanium-2's 6 MiB L3 -> base rate ~35 ns/cell.

Stencil cache anomaly (2 PEs / 4 objects -> 85.77 ms/step):
    1024x1024 blocks (2 x 8.4 MiB) spill L3; the ratio 85.77/75.05 sets
    the DRAM penalty ~1.24 at full spill.

Stencil per-object overhead (32 PEs: 1024 objects 8.09 ms vs 256
objects 6.02 ms):
    Delta 2.07 ms over 24 extra objects/PE -> ~86 us per object-step,
    decomposed as 4 ghost receives x 12 us + sends 4 x 8 us + scheduling.

LeanMD (one step ~8 s sequential, 216 cells / 3,024 pairs, 64
atoms/cell):
    11.9 M pairwise evaluations/step -> ~650 ns per evaluation.

WAN (paper §5.1): 1.725 ms one-way ICMP, 1.920 ms Charm++ ping-pong ->
    195 us software stack overhead.  TeraGrid backbone share ~40 MB/s
    per direction; jitter lognormal (median ~120 us, sigma 0.6) at the
    scale of era measurements on shared academic WANs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.leanmd.costs import DEFAULT_LEANMD_COSTS, LeanMDCostModel
from repro.apps.stencil.costs import DEFAULT_STENCIL_COSTS, StencilCostModel
from repro.grid.teragrid import DEFAULT_TERAGRID, TeraGridWanModel


@dataclass(frozen=True)
class Calibration:
    """The full calibration bundle used by the reproduction benchmarks."""

    stencil: StencilCostModel = DEFAULT_STENCIL_COSTS
    leanmd: LeanMDCostModel = DEFAULT_LEANMD_COSTS
    teragrid: TeraGridWanModel = DEFAULT_TERAGRID

    def sequential_stencil_step(self, mesh_cells: int = 2048 * 2048,
                                block_edge: int = 512) -> float:
        """Predicted 1-PE stencil step time (anchor check)."""
        blocks = mesh_cells // (block_edge * block_edge)
        per_block = self.stencil.compute_cost(block_edge, block_edge)
        return blocks * per_block

    def sequential_leanmd_step(self, cells: int = 216,
                               neighbor_pairs: int = 2808,
                               atoms_per_cell: int = 64) -> float:
        """Predicted 1-PE LeanMD step time (anchor: ~8 s)."""
        n = atoms_per_cell
        interactions = neighbor_pairs * n * n + cells * (n * (n - 1) // 2)
        return (interactions * self.leanmd.per_interaction
                + (neighbor_pairs + cells) * self.leanmd.pair_fixed
                + cells * self.leanmd.integrate_cost(n))


#: The calibration instance everything defaults to.
DEFAULT_CALIBRATION = Calibration()
