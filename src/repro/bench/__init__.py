"""Benchmark harness: sweeps, tables and figures for every paper artefact."""

from repro.bench.calibration import DEFAULT_CALIBRATION, Calibration
from repro.bench.figures import (
    knee_latency_ms,
    render_fig3_panel,
    render_fig4,
    render_series,
)
from repro.bench.harness import (
    DEFAULT_STEPS,
    TERAGRID_ONE_WAY_MS,
    leanmd_point,
    stencil_ampi_point,
    stencil_point,
)
from repro.bench.cache import DEFAULT_CACHE_DIR, RunCache, spec_key
from repro.bench.executor import SweepStats, default_jobs, run_sweep
from repro.bench.records import ExperimentPoint, Series, group_series
from repro.bench.specs import RunSpec
from repro.bench.sweep import (
    FIG3_LATENCIES_MS,
    FIG3_PANEL_OBJECTS,
    FIG4_LATENCIES_MS,
    PE_COUNTS,
    TABLE1_ROWS,
    specs_fig3,
    specs_fig4,
    specs_table1,
    specs_table2,
    sweep_fig3,
    sweep_fig4,
    sweep_table1,
    sweep_table2,
)
from repro.bench.tables import (
    PAPER_TABLE1,
    PAPER_TABLE2,
    render_table1,
    render_table2,
    trend_agreement,
)

__all__ = [
    "ExperimentPoint",
    "Series",
    "group_series",
    "stencil_point",
    "stencil_ampi_point",
    "leanmd_point",
    "RunSpec",
    "RunCache",
    "SweepStats",
    "run_sweep",
    "default_jobs",
    "spec_key",
    "DEFAULT_CACHE_DIR",
    "specs_fig3",
    "specs_table1",
    "specs_fig4",
    "specs_table2",
    "sweep_fig3",
    "sweep_table1",
    "sweep_fig4",
    "sweep_table2",
    "render_table1",
    "render_table2",
    "render_fig3_panel",
    "render_fig4",
    "render_series",
    "knee_latency_ms",
    "trend_agreement",
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "FIG3_PANEL_OBJECTS",
    "FIG3_LATENCIES_MS",
    "FIG4_LATENCIES_MS",
    "TABLE1_ROWS",
    "PE_COUNTS",
    "DEFAULT_STEPS",
    "TERAGRID_ONE_WAY_MS",
    "Calibration",
    "DEFAULT_CALIBRATION",
]
