"""Single-experiment harness.

One function per (application x environment) combination, each returning
an :class:`~repro.bench.records.ExperimentPoint`.  Benchmarks and sweeps
compose these; nothing here knows about pytest.
"""

from __future__ import annotations

from typing import Tuple

from repro.apps.leanmd import LeanMDApp
from repro.apps.stencil import AmpiStencilApp, StencilApp
from repro.bench.records import ExperimentPoint
from repro.grid.presets import artificial_latency_env, teragrid_env
from repro.units import ms

#: Default measurement length: long enough for a steady-state window,
#: short enough that full sweeps finish in minutes.
DEFAULT_STEPS = 10

#: The paper's measured one-way NCSA-ANL latency, used when artificial
#: experiments want to mirror the real grid (Tables 1 and 2).
TERAGRID_ONE_WAY_MS = 1.725


def _obs_extra(env) -> dict:
    """Observability digest for an ExperimentPoint's ``extra`` dict.

    Empty when the environment was built with ``stats=False``; otherwise
    the streaming aggregator's summary (utilization, comm/compute split,
    masked-latency fraction) so every benchmark row carries the overlap
    statistics alongside its time-per-step.
    """
    agg = getattr(env, "aggregator", None)
    if agg is None:
        return {}
    return {"obs": agg.summary()}


def stencil_point(experiment: str, pes: int, objects: int,
                  latency_ms_value: float, *,
                  mesh: Tuple[int, int] = (2048, 2048),
                  steps: int = DEFAULT_STEPS, payload: str = "modeled",
                  environment: str = "artificial",
                  seed: int = 0) -> ExperimentPoint:
    """Run one stencil configuration and record the result."""
    if environment == "artificial":
        env = artificial_latency_env(pes, ms(latency_ms_value), seed=seed)
    elif environment == "teragrid":
        env = teragrid_env(pes, seed=seed)
    else:
        raise ValueError(f"unknown environment {environment!r}")
    app = StencilApp(env, mesh=mesh, objects=objects, payload=payload)
    result = app.run(steps)
    return ExperimentPoint(
        experiment=experiment, app="stencil", environment=environment,
        pes=pes, objects=objects, latency_ms=latency_ms_value,
        time_per_step=result.time_per_step, steps=steps,
        extra={"makespan": result.makespan,
               "mesh": list(mesh), "payload": payload,
               **_obs_extra(env)})


def stencil_ampi_point(experiment: str, pes: int, ranks: int,
                       latency_ms_value: float, *,
                       mesh: Tuple[int, int] = (2048, 2048),
                       steps: int = DEFAULT_STEPS,
                       payload: str = "modeled",
                       seed: int = 0) -> ExperimentPoint:
    """Run the AMPI stencil variant (ranks are the virtualization)."""
    env = artificial_latency_env(pes, ms(latency_ms_value), seed=seed)
    app = AmpiStencilApp(env, mesh=mesh, ranks=ranks, payload=payload)
    result = app.run(steps)
    return ExperimentPoint(
        experiment=experiment, app="stencil-ampi", environment="artificial",
        pes=pes, objects=ranks, latency_ms=latency_ms_value,
        time_per_step=result.time_per_step, steps=steps,
        extra={"makespan": result.makespan, "payload": payload,
               **_obs_extra(env)})


def leanmd_point(experiment: str, pes: int, latency_ms_value: float, *,
                 cells: Tuple[int, int, int] = (6, 6, 6),
                 atoms_per_cell: int = 64,
                 steps: int = DEFAULT_STEPS, payload: str = "modeled",
                 environment: str = "artificial",
                 seed: int = 0) -> ExperimentPoint:
    """Run one LeanMD configuration and record the result."""
    if environment == "artificial":
        env = artificial_latency_env(pes, ms(latency_ms_value), seed=seed)
    elif environment == "teragrid":
        env = teragrid_env(pes, seed=seed)
    else:
        raise ValueError(f"unknown environment {environment!r}")
    app = LeanMDApp(env, cells=cells, atoms_per_cell=atoms_per_cell,
                    payload=payload)
    result = app.run(steps)
    grid_cells = cells[0] * cells[1] * cells[2]
    return ExperimentPoint(
        experiment=experiment, app="leanmd", environment=environment,
        pes=pes, objects=grid_cells, latency_ms=latency_ms_value,
        time_per_step=result.time_per_step, steps=steps,
        extra={"makespan": result.makespan, "cells": list(cells),
               "atoms_per_cell": atoms_per_cell, "payload": payload,
               **_obs_extra(env)})
