"""Single-experiment harness.

One function per (application x environment) combination, each returning
an :class:`~repro.bench.records.ExperimentPoint`.  Benchmarks and sweeps
compose these; nothing here knows about pytest.
"""

from __future__ import annotations

import os
from typing import Optional, Tuple

import numpy as np

from repro.apps.collectives import AmpiCollectiveBenchApp, CollectiveBenchApp
from repro.apps.leanmd import LeanMDApp
from repro.apps.stencil import AmpiStencilApp, StencilApp
from repro.bench.records import ExperimentPoint
from repro.bench.trajectory import append_record
from repro.grid.presets import artificial_latency_env, teragrid_env
from repro.units import ms

#: Default measurement length: long enough for a steady-state window,
#: short enough that full sweeps finish in minutes.
DEFAULT_STEPS = 10

#: The paper's measured one-way NCSA-ANL latency, used when artificial
#: experiments want to mirror the real grid (Tables 1 and 2).
TERAGRID_ONE_WAY_MS = 1.725

#: When this environment variable is set, every harness run appends a
#: summary record to the perf trajectory: ``1`` (or any truthy value
#: other than a path) targets ``BENCH_critpath.json`` in the current
#: directory; any other value is used as the file path.
BENCH_LOG_ENV = "REPRO_BENCH_LOG"


def _obs_extra(env) -> dict:
    """Observability digest for an ExperimentPoint's ``extra`` dict.

    Empty when the environment was built with ``stats=False``; otherwise
    the streaming aggregator's summary (utilization, comm/compute split,
    masked-latency fraction) so every benchmark row carries the overlap
    statistics alongside its time-per-step.  When the flight recorder
    saw hop ledgers, a WAN roll-up (crossings, busy/queue seconds) rides
    along under ``extra["net"]``.
    """
    # Imported here, not at module top: repro.obs.ledger imports
    # repro.bench.trajectory, whose package __init__ imports this
    # module — a top-level import would close that cycle.
    from repro.obs.ledger import net_rollup

    agg = getattr(env, "aggregator", None)
    if agg is None:
        return {}
    extra = {"obs": agg.summary()}
    net = net_rollup(env)
    if net is not None:
        extra["net"] = net
    return extra


def _median_step_s(result) -> float:
    """Median steady-state step time from a result's completion times."""
    times = np.asarray(result.step_times, dtype=np.float64)
    warmup = getattr(result, "warmup", 0)
    window = times[warmup:] if len(times) > warmup + 1 else times
    diffs = np.diff(window)
    if len(diffs) == 0:
        return float(result.time_per_step)
    return float(np.median(diffs))


def maybe_log_trajectory(point: ExperimentPoint, result, env,
                         compute_share: Optional[float] = None,
                         extra: Optional[dict] = None,
                         steps_attribution=None,
                         dedup: bool = True) -> None:
    """Append a perf-trajectory record when ``REPRO_BENCH_LOG`` is set.

    Off by default so ordinary test/benchmark runs stay side-effect
    free; ``benchmarks/conftest.py`` and the perf-smoke CI job turn it
    on.  Records are schema-2 ledger records
    (:func:`repro.obs.ledger.build_run_record`): config digest, median
    steady-state step time, masked-latency fraction, net/health
    roll-ups, the wall-clock profile when the environment ran with
    ``profile=True``, and — when the caller passes *steps_attribution*
    — the full critical-path decomposition.  *extra* entries merge into
    the record's ``extra`` dict (the perf-smoke job stores its measured
    observability overheads there).

    Identical consecutive re-runs are deduplicated by default (virtual
    time is bit-reproducible, so a true re-run adds no information);
    pass ``dedup=False`` — perf-smoke's ``--keep-dups`` — to keep every
    append.
    """
    # Function-local for the same import-cycle reason as _obs_extra.
    from repro.obs.ledger import build_run_record

    dest = os.environ.get(BENCH_LOG_ENV)
    if not dest:
        return
    path_kwargs = {} if dest == "1" else {"path": dest}
    config = {
        "experiment": point.experiment, "app": point.app,
        "environment": point.environment, "pes": point.pes,
        "objects": point.objects, "latency_ms": point.latency_ms,
        "steps": point.steps,
    }
    record = build_run_record(
        name=f"{point.app}:{point.pes}x{point.objects}"
             f"@{point.latency_ms:g}ms",
        config=config, result=result, env=env,
        steps_attribution=steps_attribution, extra=extra)
    record.time_per_step_s = _median_step_s(result)
    if record.critpath_compute_share is None:
        record.critpath_compute_share = compute_share
    append_record(record, dedup=dedup, **path_kwargs)


def stencil_point(experiment: str, pes: int, objects: int,
                  latency_ms_value: float, *,
                  mesh: Tuple[int, int] = (2048, 2048),
                  steps: int = DEFAULT_STEPS, payload: str = "modeled",
                  environment: str = "artificial",
                  seed: int = 0, kernel: str = "numpy",
                  engine_shards: int = 0) -> ExperimentPoint:
    """Run one stencil configuration and record the result.

    ``engine_shards >= 1`` routes the run through the sharded
    conservative-PDES engine (:func:`repro.grid.pdes.run_sharded`) on
    the equivalent two-cluster topology.  The trajectory is certified
    bit-identical to serial, so the measured point is the same — the
    knob exists for scaling experiments and defense-in-depth digests
    (``extra`` carries shard count, sync rounds and trajectory digest).
    Shards here run in-process; true multi-core execution is the
    perf-smoke ``--pdes`` benchmark's job (worker processes must not be
    spawned from inside the executor's own process pool).
    """
    if engine_shards:
        if environment != "artificial":
            raise ValueError(
                "engine_shards supports only the artificial environment")
        from repro.grid.pdes import StencilPdesJob, run_sharded
        half = pes // 2
        job = StencilPdesJob(cluster_sizes=(half, pes - half),
                             latency=ms(latency_ms_value), mesh=mesh,
                             objects=objects, steps=steps,
                             payload=payload, kernel=kernel, seed=seed)
        sharded = run_sharded(job, engine_shards)
        result = sharded.result
        return ExperimentPoint(
            experiment=experiment, app="stencil", environment=environment,
            pes=pes, objects=objects, latency_ms=latency_ms_value,
            time_per_step=result.time_per_step, steps=steps,
            extra={"makespan": result.makespan,
                   "mesh": list(mesh), "payload": payload,
                   "engine_shards": sharded.shards,
                   "sync_rounds": sharded.rounds,
                   "trajectory_digest": sharded.digest})
    if environment == "artificial":
        env = artificial_latency_env(pes, ms(latency_ms_value), seed=seed)
    elif environment == "teragrid":
        env = teragrid_env(pes, seed=seed)
    else:
        raise ValueError(f"unknown environment {environment!r}")
    app = StencilApp(env, mesh=mesh, objects=objects, payload=payload,
                     kernel=kernel)
    result = app.run(steps)
    point = ExperimentPoint(
        experiment=experiment, app="stencil", environment=environment,
        pes=pes, objects=objects, latency_ms=latency_ms_value,
        time_per_step=result.time_per_step, steps=steps,
        extra={"makespan": result.makespan,
               "mesh": list(mesh), "payload": payload,
               **_obs_extra(env)})
    maybe_log_trajectory(point, result, env)
    return point


def stencil_ampi_point(experiment: str, pes: int, ranks: int,
                       latency_ms_value: float, *,
                       mesh: Tuple[int, int] = (2048, 2048),
                       steps: int = DEFAULT_STEPS,
                       payload: str = "modeled",
                       seed: int = 0) -> ExperimentPoint:
    """Run the AMPI stencil variant (ranks are the virtualization)."""
    env = artificial_latency_env(pes, ms(latency_ms_value), seed=seed)
    app = AmpiStencilApp(env, mesh=mesh, ranks=ranks, payload=payload)
    result = app.run(steps)
    point = ExperimentPoint(
        experiment=experiment, app="stencil-ampi", environment="artificial",
        pes=pes, objects=ranks, latency_ms=latency_ms_value,
        time_per_step=result.time_per_step, steps=steps,
        extra={"makespan": result.makespan, "payload": payload,
               **_obs_extra(env)})
    maybe_log_trajectory(point, result, env)
    return point


def routing_variant_label(routing: str, wan_streams: int) -> str:
    """Display label for one collective-routing benchmark variant."""
    if routing == "hierarchical":
        return "hier+striped" if wan_streams > 1 else "hier"
    return "flat"


def collectives_point(experiment: str, pes: int, objects: int,
                      latency_ms_value: float, *, ampi: bool = False,
                      routing: str = "flat", wan_streams: int = 0,
                      payload_bytes: int = 256 * 1024,
                      steps: int = DEFAULT_STEPS,
                      seed: int = 0) -> ExperimentPoint:
    """Run one collective-benchmark configuration (chare or AMPI).

    *objects* is the worker count for the chare flavour and the rank
    count for the AMPI flavour.  The routing variant travels in
    ``extra["variant"]`` so the Figure-3c renderer can group by it.
    """
    env = artificial_latency_env(pes, ms(latency_ms_value), seed=seed,
                                 routing=routing, wan_streams=wan_streams)
    if ampi:
        app = AmpiCollectiveBenchApp(env, ranks=objects,
                                     payload_bytes=payload_bytes)
    else:
        app = CollectiveBenchApp(env, objects=objects,
                                 payload_bytes=payload_bytes)
    result = app.run(steps)
    wan_msgs = sum(d.messages_carried for d in env.chain.transports()
                   if "wan" in d.name)
    point = ExperimentPoint(
        experiment=experiment,
        app="collectives-ampi" if ampi else "collectives",
        environment="artificial", pes=pes, objects=objects,
        latency_ms=latency_ms_value,
        time_per_step=result.time_per_step, steps=steps,
        extra={"makespan": result.makespan,
               "variant": routing_variant_label(routing, wan_streams),
               "routing": routing, "wan_streams": wan_streams,
               "payload_bytes": payload_bytes,
               "wan_messages": wan_msgs,
               "checksum": result.checksum,
               **_obs_extra(env)})
    maybe_log_trajectory(point, result, env)
    return point


def leanmd_point(experiment: str, pes: int, latency_ms_value: float, *,
                 cells: Tuple[int, int, int] = (6, 6, 6),
                 atoms_per_cell: int = 64,
                 steps: int = DEFAULT_STEPS, payload: str = "modeled",
                 environment: str = "artificial",
                 seed: int = 0) -> ExperimentPoint:
    """Run one LeanMD configuration and record the result."""
    if environment == "artificial":
        env = artificial_latency_env(pes, ms(latency_ms_value), seed=seed)
    elif environment == "teragrid":
        env = teragrid_env(pes, seed=seed)
    else:
        raise ValueError(f"unknown environment {environment!r}")
    app = LeanMDApp(env, cells=cells, atoms_per_cell=atoms_per_cell,
                    payload=payload)
    result = app.run(steps)
    grid_cells = cells[0] * cells[1] * cells[2]
    point = ExperimentPoint(
        experiment=experiment, app="leanmd", environment=environment,
        pes=pes, objects=grid_cells, latency_ms=latency_ms_value,
        time_per_step=result.time_per_step, steps=steps,
        extra={"makespan": result.makespan, "cells": list(cells),
               "atoms_per_cell": atoms_per_cell, "payload": payload,
               **_obs_extra(env)})
    maybe_log_trajectory(point, result, env)
    return point
