"""Parameter sweeps reproducing each figure/table of the paper.

Each function returns the list of :class:`ExperimentPoint` rows that the
corresponding rendering in :mod:`repro.bench.tables` /
:mod:`repro.bench.figures` consumes.  The configurations mirror the
paper exactly:

* Figure 3: 2048x2048 stencil, PEs in {2,...,64}, per-panel object
  counts, one-way latency swept 0-32 ms;
* Table 1: the 18 (PEs, objects) rows at the TeraGrid latency, both
  environments;
* Figure 4: LeanMD, latency 1-256 ms, PEs in {2,...,64};
* Table 2: LeanMD, both environments, PEs in {2,...,64}.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.harness import (
    TERAGRID_ONE_WAY_MS,
    leanmd_point,
    stencil_point,
)
from repro.bench.records import ExperimentPoint

#: Paper Figure 3: which virtualization degrees appear in which panel.
FIG3_PANEL_OBJECTS: Dict[int, Tuple[int, ...]] = {
    2: (4, 16, 64),
    4: (4, 16, 64),
    8: (16, 64, 256),
    16: (16, 64, 256),
    32: (64, 256, 1024),
    64: (64, 256, 1024),
}

#: Latency grid for Figure 3 (one-way, ms): 0-32 as in the paper.
FIG3_LATENCIES_MS: Tuple[float, ...] = (0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0)

#: Paper Table 1's row set: (PEs, objects).
TABLE1_ROWS: Tuple[Tuple[int, int], ...] = (
    (2, 4), (2, 16), (2, 64),
    (4, 4), (4, 16), (4, 64),
    (8, 16), (8, 64), (8, 256),
    (16, 16), (16, 64), (16, 256),
    (32, 64), (32, 256), (32, 1024),
    (64, 64), (64, 256), (64, 1024),
)

#: Figure 4's latency grid (one-way, ms): 1-256, powers of two.
FIG4_LATENCIES_MS: Tuple[float, ...] = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0,
                                        64.0, 128.0, 256.0)

#: Processor counts common to all experiments.
PE_COUNTS: Tuple[int, ...] = (2, 4, 8, 16, 32, 64)


def sweep_fig3(panels: Optional[Sequence[int]] = None,
               latencies_ms: Sequence[float] = FIG3_LATENCIES_MS,
               steps: int = 10) -> List[ExperimentPoint]:
    """All points of Figure 3 (optionally a subset of panels)."""
    out: List[ExperimentPoint] = []
    for pes in (panels if panels is not None else PE_COUNTS):
        for objects in FIG3_PANEL_OBJECTS[pes]:
            for lat in latencies_ms:
                out.append(stencil_point("fig3", pes, objects, lat,
                                         steps=steps))
    return out


def sweep_table1(rows: Sequence[Tuple[int, int]] = TABLE1_ROWS,
                 steps: int = 10, seed: int = 0) -> List[ExperimentPoint]:
    """Table 1: artificial latency vs the TeraGrid model, row by row."""
    out: List[ExperimentPoint] = []
    for pes, objects in rows:
        out.append(stencil_point("table1", pes, objects,
                                 TERAGRID_ONE_WAY_MS, steps=steps))
        out.append(stencil_point("table1", pes, objects,
                                 TERAGRID_ONE_WAY_MS, steps=steps,
                                 environment="teragrid", seed=seed))
    return out


def sweep_fig4(pe_counts: Sequence[int] = PE_COUNTS,
               latencies_ms: Sequence[float] = FIG4_LATENCIES_MS,
               steps: int = 8) -> List[ExperimentPoint]:
    """All points of Figure 4 (LeanMD latency sweep)."""
    out: List[ExperimentPoint] = []
    for pes in pe_counts:
        for lat in latencies_ms:
            out.append(leanmd_point("fig4", pes, lat, steps=steps))
    return out


def sweep_table2(pe_counts: Sequence[int] = PE_COUNTS,
                 steps: int = 8, seed: int = 0) -> List[ExperimentPoint]:
    """Table 2: LeanMD, artificial vs TeraGrid, per PE count."""
    out: List[ExperimentPoint] = []
    for pes in pe_counts:
        out.append(leanmd_point("table2", pes, TERAGRID_ONE_WAY_MS,
                                steps=steps))
        out.append(leanmd_point("table2", pes, TERAGRID_ONE_WAY_MS,
                                steps=steps, environment="teragrid",
                                seed=seed))
    return out
