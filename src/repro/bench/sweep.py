"""Parameter sweeps reproducing each figure/table of the paper.

Each ``specs_*`` function builds the declarative
:class:`~repro.bench.specs.RunSpec` list for one artefact; each
``sweep_*`` function realizes it through the executor
(:mod:`repro.bench.executor`) and returns the
:class:`ExperimentPoint` rows that the corresponding rendering in
:mod:`repro.bench.tables` / :mod:`repro.bench.figures` consumes.
Passing ``jobs`` fans the runs out over a process pool; passing a
:class:`~repro.bench.cache.RunCache` serves repeated configurations
from disk.  Results are identical (bit-for-bit) for any ``jobs``.

The configurations mirror the paper exactly:

* Figure 3: 2048x2048 stencil, PEs in {2,...,64}, per-panel object
  counts, one-way latency swept 0-32 ms;
* Table 1: the 18 (PEs, objects) rows at the TeraGrid latency, both
  environments;
* Figure 4: LeanMD, latency 1-256 ms, PEs in {2,...,64};
* Table 2: LeanMD, both environments, PEs in {2,...,64}.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.cache import RunCache
from repro.bench.executor import ProgressFn, SweepStats, run_sweep
from repro.bench.harness import TERAGRID_ONE_WAY_MS
from repro.bench.records import ExperimentPoint
from repro.bench.specs import RunSpec

#: Paper Figure 3: which virtualization degrees appear in which panel.
FIG3_PANEL_OBJECTS: Dict[int, Tuple[int, ...]] = {
    2: (4, 16, 64),
    4: (4, 16, 64),
    8: (16, 64, 256),
    16: (16, 64, 256),
    32: (64, 256, 1024),
    64: (64, 256, 1024),
}

#: Latency grid for Figure 3 (one-way, ms): 0-32 as in the paper.
FIG3_LATENCIES_MS: Tuple[float, ...] = (0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0)

#: Paper Table 1's row set: (PEs, objects).
TABLE1_ROWS: Tuple[Tuple[int, int], ...] = (
    (2, 4), (2, 16), (2, 64),
    (4, 4), (4, 16), (4, 64),
    (8, 16), (8, 64), (8, 256),
    (16, 16), (16, 64), (16, 256),
    (32, 64), (32, 256), (32, 1024),
    (64, 64), (64, 256), (64, 1024),
)

#: Figure 4's latency grid (one-way, ms): 1-256, powers of two.
FIG4_LATENCIES_MS: Tuple[float, ...] = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0,
                                        64.0, 128.0, 256.0)

#: Processor counts common to all experiments.
PE_COUNTS: Tuple[int, ...] = (2, 4, 8, 16, 32, 64)

#: Figure 3c (collective-routing panel): the compared variants as
#: ``(label, routing, wan_streams)``.  All three share the paced-stream
#: WAN model so the comparison isolates routing + striping, not the
#: contention model itself.
FIG3C_VARIANTS: Tuple[Tuple[str, str, int], ...] = (
    ("flat", "flat", 1),
    ("hier", "hierarchical", 1),
    ("hier+striped", "hierarchical", 4),
)

#: Figure 3c machine/virtualization sizes (kept modest: the panel is
#: about routing ratios, not scale).
FIG3C_PES = 8
FIG3C_OBJECTS = 64          # chare workers
FIG3C_RANKS = 16            # AMPI ranks


# -- spec builders (pure, no side effects) ------------------------------------

def specs_fig3(panels: Optional[Sequence[int]] = None,
               latencies_ms: Sequence[float] = FIG3_LATENCIES_MS,
               steps: int = 10) -> List[RunSpec]:
    """Specs for all points of Figure 3 (optionally a panel subset)."""
    out: List[RunSpec] = []
    for pes in (panels if panels is not None else PE_COUNTS):
        for objects in FIG3_PANEL_OBJECTS[pes]:
            for lat in latencies_ms:
                out.append(RunSpec(kind="stencil", experiment="fig3",
                                   pes=pes, objects=objects,
                                   latency_ms=lat, steps=steps))
    return out


def specs_fig3_collectives(latencies_ms: Sequence[float] = FIG3_LATENCIES_MS,
                           steps: int = 8) -> List[RunSpec]:
    """Specs for Figure 3c: flat vs hierarchical vs hierarchical+striped
    collective routing, chare and AMPI flavours, over the 0-32 ms sweep.
    """
    out: List[RunSpec] = []
    for kind, objects in (("collectives", FIG3C_OBJECTS),
                          ("collectives-ampi", FIG3C_RANKS)):
        for _label, routing, streams in FIG3C_VARIANTS:
            for lat in latencies_ms:
                out.append(RunSpec(kind=kind, experiment="fig3c",
                                   pes=FIG3C_PES, objects=objects,
                                   latency_ms=lat, steps=steps,
                                   routing=routing, wan_streams=streams))
    return out


def specs_table1(rows: Sequence[Tuple[int, int]] = TABLE1_ROWS,
                 steps: int = 10, seed: int = 0) -> List[RunSpec]:
    """Specs for Table 1: artificial vs TeraGrid, row by row.

    As in the original eager sweep, *seed* applies to the TeraGrid
    (jittered) runs only; artificial-latency runs are seed-independent
    and always use the default.
    """
    out: List[RunSpec] = []
    for pes, objects in rows:
        out.append(RunSpec(kind="stencil", experiment="table1", pes=pes,
                           objects=objects,
                           latency_ms=TERAGRID_ONE_WAY_MS, steps=steps))
        out.append(RunSpec(kind="stencil", experiment="table1", pes=pes,
                           objects=objects,
                           latency_ms=TERAGRID_ONE_WAY_MS, steps=steps,
                           environment="teragrid", seed=seed))
    return out


def specs_fig4(pe_counts: Sequence[int] = PE_COUNTS,
               latencies_ms: Sequence[float] = FIG4_LATENCIES_MS,
               steps: int = 8) -> List[RunSpec]:
    """Specs for all points of Figure 4 (LeanMD latency sweep)."""
    return [RunSpec(kind="leanmd", experiment="fig4", pes=pes,
                    latency_ms=lat, steps=steps)
            for pes in pe_counts for lat in latencies_ms]


def specs_table2(pe_counts: Sequence[int] = PE_COUNTS,
                 steps: int = 8, seed: int = 0) -> List[RunSpec]:
    """Specs for Table 2: LeanMD, artificial vs TeraGrid, per PE count."""
    out: List[RunSpec] = []
    for pes in pe_counts:
        out.append(RunSpec(kind="leanmd", experiment="table2", pes=pes,
                           latency_ms=TERAGRID_ONE_WAY_MS, steps=steps))
        out.append(RunSpec(kind="leanmd", experiment="table2", pes=pes,
                           latency_ms=TERAGRID_ONE_WAY_MS, steps=steps,
                           environment="teragrid", seed=seed))
    return out


# -- realized sweeps ----------------------------------------------------------

def sweep_fig3(panels: Optional[Sequence[int]] = None,
               latencies_ms: Sequence[float] = FIG3_LATENCIES_MS,
               steps: int = 10, jobs: int = 1,
               cache: Optional[RunCache] = None,
               progress: Optional[ProgressFn] = None,
               stats: Optional[SweepStats] = None
               ) -> List[ExperimentPoint]:
    """All points of Figure 3 (optionally a subset of panels)."""
    return run_sweep(specs_fig3(panels, latencies_ms, steps), jobs=jobs,
                     cache=cache, progress=progress, stats=stats)


def sweep_fig3_collectives(latencies_ms: Sequence[float] = FIG3_LATENCIES_MS,
                           steps: int = 8, jobs: int = 1,
                           cache: Optional[RunCache] = None,
                           progress: Optional[ProgressFn] = None,
                           stats: Optional[SweepStats] = None
                           ) -> List[ExperimentPoint]:
    """All points of Figure 3c (collective-routing comparison)."""
    return run_sweep(specs_fig3_collectives(latencies_ms, steps),
                     jobs=jobs, cache=cache, progress=progress,
                     stats=stats)


def sweep_table1(rows: Sequence[Tuple[int, int]] = TABLE1_ROWS,
                 steps: int = 10, seed: int = 0, jobs: int = 1,
                 cache: Optional[RunCache] = None,
                 progress: Optional[ProgressFn] = None,
                 stats: Optional[SweepStats] = None
                 ) -> List[ExperimentPoint]:
    """Table 1: artificial latency vs the TeraGrid model, row by row."""
    return run_sweep(specs_table1(rows, steps, seed), jobs=jobs,
                     cache=cache, progress=progress, stats=stats)


def sweep_fig4(pe_counts: Sequence[int] = PE_COUNTS,
               latencies_ms: Sequence[float] = FIG4_LATENCIES_MS,
               steps: int = 8, jobs: int = 1,
               cache: Optional[RunCache] = None,
               progress: Optional[ProgressFn] = None,
               stats: Optional[SweepStats] = None
               ) -> List[ExperimentPoint]:
    """All points of Figure 4 (LeanMD latency sweep)."""
    return run_sweep(specs_fig4(pe_counts, latencies_ms, steps), jobs=jobs,
                     cache=cache, progress=progress, stats=stats)


def sweep_table2(pe_counts: Sequence[int] = PE_COUNTS,
                 steps: int = 8, seed: int = 0, jobs: int = 1,
                 cache: Optional[RunCache] = None,
                 progress: Optional[ProgressFn] = None,
                 stats: Optional[SweepStats] = None
                 ) -> List[ExperimentPoint]:
    """Table 2: LeanMD, artificial vs TeraGrid, per PE count."""
    return run_sweep(specs_table2(pe_counts, steps, seed), jobs=jobs,
                     cache=cache, progress=progress, stats=stats)
