"""The sweep executor: run lists of specs serially or across processes.

:func:`run_sweep` is the single entry point every sweep goes through.
It takes declarative :class:`~repro.bench.specs.RunSpec` lists and

* consults the content-addressed cache first (when given one);
* runs the remaining specs either in-process (``jobs=1``) or on a
  ``ProcessPoolExecutor`` (``jobs>1``), one spec per task;
* isolates failures: a spec whose run raises produces an *error row*
  (``time_per_step=inf``, ``extra["error"]``) while its siblings
  complete normally;
* merges results **in spec order**, so the returned list is bit-identical
  to a serial run regardless of worker completion order (simulated
  virtual time is deterministic; only wall-clock changes with ``jobs``).

Workers are ordinary forked/spawned Python processes; the per-runtime
message sequence counter (reset on every
:class:`~repro.core.rts.Runtime` construction) keeps results independent
of which worker ran which spec or in what order.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.bench.cache import RunCache
from repro.bench.records import ExperimentPoint
from repro.bench.specs import RunSpec

#: Environment override for the default worker count.
JOBS_ENV = "REPRO_BENCH_JOBS"

ProgressFn = Callable[[str], None]


def default_jobs() -> int:
    """Worker count used when the caller does not pass one.

    ``REPRO_BENCH_JOBS`` wins when set (CI pins it; developers can
    export it once); otherwise sweeps stay serial, which is the
    bit-identical baseline and the cheapest choice on small machines.
    """
    raw = os.environ.get(JOBS_ENV, "")
    try:
        jobs = int(raw)
    except ValueError:
        return 1
    return max(1, jobs)


@dataclass
class SweepStats:
    """What :func:`run_sweep` did, for reporting and CI assertions."""

    total: int = 0
    cache_hits: int = 0
    executed: int = 0
    errors: int = 0
    jobs: int = 1
    wall_s: float = 0.0
    error_labels: List[str] = field(default_factory=list)

    @property
    def cache_fraction(self) -> float:
        return self.cache_hits / self.total if self.total else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {"total": self.total, "cache_hits": self.cache_hits,
                "executed": self.executed, "errors": self.errors,
                "jobs": self.jobs, "wall_s": self.wall_s,
                "cache_fraction": self.cache_fraction,
                "error_labels": list(self.error_labels)}


def _execute_spec(spec: RunSpec) -> Tuple[str, Any]:
    """Worker task: run one spec, never letting exceptions escape.

    Failures are returned as values (``("error", message)``) rather than
    raised, so one bad configuration cannot poison the process pool —
    the pool only breaks on interpreter death, not on application
    errors.  Module-level so it pickles for the pool.
    """
    try:
        return ("ok", spec.run())
    except Exception as exc:  # noqa: BLE001 - isolation is the point
        return ("error", f"{type(exc).__name__}: {exc}")


def run_sweep(specs: Sequence[RunSpec], jobs: int = 1,
              cache: Optional[RunCache] = None,
              progress: Optional[ProgressFn] = None,
              stats: Optional[SweepStats] = None
              ) -> List[ExperimentPoint]:
    """Realize *specs* into measurement rows, in spec order.

    Parameters
    ----------
    jobs:
        ``1`` runs in-process; ``>1`` fans out over a process pool of
        that many workers.  Results are identical either way.
    cache:
        Optional :class:`~repro.bench.cache.RunCache`; hits skip the
        run, fresh results (except error rows) are stored back.
    progress:
        Optional callable receiving one line per completed spec.
    stats:
        Optional :class:`SweepStats` filled in place (counts, cache
        fraction, wall time).
    """
    specs = list(specs)
    n = len(specs)
    st = stats if stats is not None else SweepStats()
    st.total = n
    st.jobs = max(1, jobs)
    t_start = time.perf_counter()
    results: List[Optional[ExperimentPoint]] = [None] * n
    done = 0

    def note(i: int, suffix: str) -> None:
        if progress is not None:
            progress(f"[{done}/{n}] {specs[i].label()}: {suffix}")

    def record(i: int, status: str, value: Any) -> None:
        nonlocal done
        done += 1
        if status == "ok":
            results[i] = value
            if cache is not None:
                cache.put(specs[i], value)
            st.executed += 1
            note(i, f"{value.time_per_step_ms:.3f} ms/step")
        else:
            results[i] = specs[i].error_point(value)
            st.executed += 1
            st.errors += 1
            st.error_labels.append(specs[i].label())
            note(i, f"ERROR {value}")

    pending: List[int] = []
    for i, spec in enumerate(specs):
        hit = cache.get(spec) if cache is not None else None
        if hit is not None:
            results[i] = hit
            st.cache_hits += 1
            done += 1
            note(i, "cached")
        else:
            pending.append(i)

    if pending and st.jobs > 1:
        workers = min(st.jobs, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {pool.submit(_execute_spec, specs[i]): i
                       for i in pending}
            remaining = set(futures)
            while remaining:
                finished, remaining = wait(remaining,
                                           return_when=FIRST_COMPLETED)
                for fut in finished:
                    i = futures[fut]
                    exc = fut.exception()
                    if exc is not None:
                        # The worker process itself died (e.g. OOM kill,
                        # segfault): error row for this spec, siblings
                        # continue on the surviving pool.
                        record(i, "error",
                               f"{type(exc).__name__}: {exc}")
                    else:
                        status, value = fut.result()
                        record(i, status, value)
    else:
        for i in pending:
            status, value = _execute_spec(specs[i])
            record(i, status, value)

    st.wall_s = time.perf_counter() - t_start
    return [p for p in results if p is not None]
