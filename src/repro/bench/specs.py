"""Declarative run specifications for the sweep executor.

A :class:`RunSpec` is the *plan* for one experiment point — application,
machine size, virtualization, latency, steps, environment, seed — with
no side effects until :meth:`RunSpec.run` is called.  Sweeps build lists
of specs; the executor (:mod:`repro.bench.executor`) decides *how* to
realize them: serially, across a process pool, or straight out of the
content-addressed cache (:mod:`repro.bench.cache`).

Specs are frozen, hashable, picklable (they cross the process-pool
boundary) and serialize to a canonical config dict that doubles as the
cache key material.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Tuple

from repro.bench.records import ExperimentPoint

#: Applications the executor knows how to run.
KINDS = ("stencil", "stencil-ampi", "leanmd", "collectives",
         "collectives-ampi")


@dataclass(frozen=True)
class RunSpec:
    """One experiment point, declaratively.

    ``objects`` is the virtualization degree for the stencil variants
    and ignored for LeanMD (whose object count is the cell-grid size);
    ``mesh`` applies to the stencil variants, ``cells`` /
    ``atoms_per_cell`` to LeanMD.
    """

    kind: str                    # one of KINDS
    experiment: str              # "fig3", "table1", ... (row label)
    pes: int
    latency_ms: float
    steps: int
    objects: int = 0
    environment: str = "artificial"
    seed: int = 0
    payload: str = "modeled"
    mesh: Tuple[int, int] = (2048, 2048)
    cells: Tuple[int, int, int] = (6, 6, 6)
    atoms_per_cell: int = 64
    #: Collective routing mode ("flat" / "hierarchical"); only the
    #: collectives kinds vary it, but any artificial-environment kind
    #: honours it.
    routing: str = "flat"
    #: WAN stream model: 0 = legacy uncontended WAN, >= 1 = that many
    #: paced TCP streams (see :func:`repro.grid.presets._wan_device`).
    wan_streams: int = 0
    #: Broadcast payload for the collectives kinds, bytes.
    payload_bytes: int = 256 * 1024
    #: Sharded-PDES engine: 0 (default) = the serial engine, >= 1 = run
    #: under :func:`repro.grid.pdes.run_sharded` with that many shards
    #: (clamped to the cluster count).  Stencil-only.
    engine_shards: int = 0
    #: Stencil inner-loop flavour: "numpy" (block kernels, default) or
    #: "percell" (the per-cell reference loops — bit-identical results,
    #: orders of magnitude slower; for equivalence certification).
    kernel: str = "numpy"

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown spec kind {self.kind!r}; "
                             f"expected one of {KINDS}")
        if self.engine_shards and self.kind != "stencil":
            raise ValueError(
                f"engine_shards applies only to stencil specs, "
                f"not {self.kind!r}")
        if self.kernel != "numpy" and self.kind != "stencil":
            raise ValueError(
                f"kernel applies only to stencil specs, not {self.kind!r}")

    def config(self) -> Dict[str, Any]:
        """Canonical, JSON-stable configuration dict.

        Only the fields that influence the run for this ``kind`` are
        included, so e.g. a stencil spec's cache key does not change
        when LeanMD defaults do.
        """
        base: Dict[str, Any] = {
            "kind": self.kind,
            "experiment": self.experiment,
            "pes": self.pes,
            "latency_ms": self.latency_ms,
            "steps": self.steps,
            "environment": self.environment,
            "seed": self.seed,
            "payload": self.payload,
        }
        if self.kind == "leanmd":
            base["cells"] = list(self.cells)
            base["atoms_per_cell"] = self.atoms_per_cell
        elif self.kind in ("collectives", "collectives-ampi"):
            base["objects"] = self.objects
            base["routing"] = self.routing
            base["wan_streams"] = self.wan_streams
            base["payload_bytes"] = self.payload_bytes
        else:
            base["objects"] = self.objects
            base["mesh"] = list(self.mesh)
        # Non-default routing knobs affect any kind's run, so they join
        # the key — but only when set, keeping pre-existing cache keys
        # (and trajectory digests) for the classic kinds unchanged.
        if self.kind not in ("collectives", "collectives-ampi"):
            if self.routing != "flat":
                base["routing"] = self.routing
            if self.wan_streams != 0:
                base["wan_streams"] = self.wan_streams
        # Same pattern for the sharded engine and kernel flavour: at
        # their defaults (serial engine, numpy kernels) the key material
        # is unchanged, so every pre-existing RunCache digest and
        # BENCH_critpath entry stays valid.
        if self.engine_shards != 0:
            base["engine_shards"] = self.engine_shards
        if self.kernel != "numpy":
            base["kernel"] = self.kernel
        return base

    def label(self) -> str:
        """Short human label for progress lines."""
        if self.kind == "leanmd":
            size = "x".join(map(str, self.cells))
        else:
            size = str(self.objects)
        env = "" if self.environment == "artificial" \
            else f" [{self.environment}]"
        return (f"{self.experiment}/{self.kind} {self.pes}pe x {size} "
                f"@ {self.latency_ms:g}ms{env}")

    # -- execution -------------------------------------------------------

    def run(self) -> ExperimentPoint:
        """Execute this spec and return its measurement row."""
        # Imported here, not at module top: workers unpickle specs
        # before running anything, and the harness pulls in the full
        # application stack.
        from repro.bench import harness

        if self.kind == "stencil":
            return harness.stencil_point(
                self.experiment, self.pes, self.objects, self.latency_ms,
                mesh=self.mesh, steps=self.steps, payload=self.payload,
                environment=self.environment, seed=self.seed,
                kernel=self.kernel, engine_shards=self.engine_shards)
        if self.kind == "stencil-ampi":
            if self.environment != "artificial":
                raise ValueError(
                    "stencil-ampi runs only in the artificial environment")
            return harness.stencil_ampi_point(
                self.experiment, self.pes, self.objects, self.latency_ms,
                mesh=self.mesh, steps=self.steps, payload=self.payload,
                seed=self.seed)
        if self.kind in ("collectives", "collectives-ampi"):
            return harness.collectives_point(
                self.experiment, self.pes, self.objects, self.latency_ms,
                ampi=(self.kind == "collectives-ampi"),
                routing=self.routing, wan_streams=self.wan_streams,
                payload_bytes=self.payload_bytes, steps=self.steps,
                seed=self.seed)
        return harness.leanmd_point(
            self.experiment, self.pes, self.latency_ms, cells=self.cells,
            atoms_per_cell=self.atoms_per_cell, steps=self.steps,
            payload=self.payload, environment=self.environment,
            seed=self.seed)

    def error_point(self, message: str) -> ExperimentPoint:
        """The row recorded when this spec's run failed.

        ``time_per_step`` is ``inf`` (unambiguously "no measurement",
        and ``inf == inf`` keeps rows comparable in equality tests);
        the failure reason travels in ``extra["error"]``.
        """
        if self.kind == "leanmd":
            objects = self.cells[0] * self.cells[1] * self.cells[2]
        else:
            objects = self.objects
        return ExperimentPoint(
            experiment=self.experiment, app=self.kind,
            environment=self.environment, pes=self.pes, objects=objects,
            latency_ms=self.latency_ms, time_per_step=math.inf,
            steps=self.steps, extra={"error": message})
