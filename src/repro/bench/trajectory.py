"""Perf-trajectory records: append-only benchmark summaries on disk.

ROADMAP's north star wants the repository to carry its own performance
history, so regressions show up in review rather than in a rerun months
later.  Each benchmarked run appends one small summary record — a config
digest plus the headline numbers (median step time, masked-latency
fraction, critical-path compute share) — to ``BENCH_critpath.json`` at
the repo root; ``repro bench-diff`` compares two records (or the last
two with matching digests) and flags >10 % step-time regressions.

The file is a JSON array of plain dicts: human-diffable, trivially
loadable, and append is read-modify-write (records are tiny and appends
rare, so no locking is needed).
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Default trajectory file, relative to the current working directory
#: (the repo root in CI and normal development).
DEFAULT_PATH = "BENCH_critpath.json"

#: Relative step-time increase treated as a regression by compare().
REGRESSION_THRESHOLD = 0.10


def config_digest(config: Dict[str, Any]) -> str:
    """Short stable digest of a run configuration.

    Canonical-JSON SHA-1, truncated: enough to match "same config, new
    run" pairs across the trajectory without storing the whole config
    twice.
    """
    canon = json.dumps(config, sort_keys=True, separators=(",", ":"),
                       default=str)
    return hashlib.sha1(canon.encode()).hexdigest()[:12]


@dataclass
class RunRecord:
    """One benchmarked run's summary in the trajectory file."""

    name: str                         # e.g. "stencil:8x64@0ms"
    config: Dict[str, Any]
    time_per_step_s: float
    masked_fraction: Optional[float] = None
    critpath_compute_share: Optional[float] = None
    digest: str = ""
    #: Unix timestamp of the run (0 when the caller wants determinism).
    created: float = 0.0
    extra: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.digest:
            self.digest = config_digest(self.config)

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "RunRecord":
        known = {k: d[k] for k in
                 ("name", "config", "time_per_step_s", "masked_fraction",
                  "critpath_compute_share", "digest", "created", "extra")
                 if k in d}
        return cls(**known)


def load_records(path: str = DEFAULT_PATH) -> List[RunRecord]:
    """All records in *path* (oldest first); empty list if absent."""
    if not os.path.exists(path):
        return []
    with open(path) as fh:
        raw = json.load(fh)
    if not isinstance(raw, list):
        raise ValueError(f"{path}: expected a JSON array of records")
    return [RunRecord.from_dict(d) for d in raw]


def append_record(record: RunRecord, path: str = DEFAULT_PATH,
                  stamp: bool = True) -> int:
    """Append *record* to *path*; returns the new record count."""
    if stamp and not record.created:
        record.created = time.time()
    records = load_records(path)
    records.append(record)
    with open(path, "w") as fh:
        json.dump([r.to_dict() for r in records], fh, indent=1)
        fh.write("\n")
    return len(records)


@dataclass
class Comparison:
    """Outcome of comparing a new record against a baseline."""

    baseline: RunRecord
    candidate: RunRecord
    threshold: float = REGRESSION_THRESHOLD

    @property
    def ratio(self) -> float:
        """candidate / baseline step time (1.0 = unchanged)."""
        if self.baseline.time_per_step_s <= 0:
            return float("inf") if self.candidate.time_per_step_s > 0 else 1.0
        return self.candidate.time_per_step_s / self.baseline.time_per_step_s

    @property
    def regressed(self) -> bool:
        return self.ratio > 1.0 + self.threshold

    @property
    def improved(self) -> bool:
        return self.ratio < 1.0 - self.threshold

    @property
    def config_changed(self) -> bool:
        return self.baseline.digest != self.candidate.digest

    def render(self) -> str:
        verdict = ("REGRESSION" if self.regressed
                   else "improved" if self.improved else "ok")
        lines = [
            f"baseline  {self.baseline.name}  "
            f"{self.baseline.time_per_step_s * 1e3:.3f} ms/step  "
            f"(digest {self.baseline.digest})",
            f"candidate {self.candidate.name}  "
            f"{self.candidate.time_per_step_s * 1e3:.3f} ms/step  "
            f"(digest {self.candidate.digest})",
            f"ratio     {self.ratio:.3f}x  "
            f"(threshold +{self.threshold:.0%})  -> {verdict}",
        ]
        if self.config_changed:
            lines.append("note      config digests differ: the comparison "
                         "crosses configurations")
        for key, attr in (("masked fraction", "masked_fraction"),
                          ("critpath compute share",
                           "critpath_compute_share")):
            b = getattr(self.baseline, attr)
            c = getattr(self.candidate, attr)
            if b is not None and c is not None:
                lines.append(f"{key:24s} {b:.3f} -> {c:.3f}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "baseline": self.baseline.to_dict(),
            "candidate": self.candidate.to_dict(),
            "ratio": self.ratio,
            "threshold": self.threshold,
            "regressed": self.regressed,
            "improved": self.improved,
            "config_changed": self.config_changed,
        }


def compare(baseline: RunRecord, candidate: RunRecord,
            threshold: float = REGRESSION_THRESHOLD) -> Comparison:
    """Compare two records; ``.regressed`` flags a >threshold slowdown."""
    return Comparison(baseline=baseline, candidate=candidate,
                      threshold=threshold)


def latest_pair(records: Sequence[RunRecord],
                digest: Optional[str] = None
                ) -> Optional[Tuple[RunRecord, RunRecord]]:
    """The two most recent records sharing a digest (or the given one).

    Returns ``(baseline, candidate)`` with the candidate newest, or
    ``None`` when no digest occurs twice.
    """
    wanted = digest
    if wanted is None:
        seen: Dict[str, RunRecord] = {}
        for rec in reversed(records):          # newest first
            if rec.digest in seen:
                return rec, seen[rec.digest]
            seen[rec.digest] = rec
        return None
    matching = [r for r in records if r.digest == wanted]
    if len(matching) < 2:
        return None
    return matching[-2], matching[-1]
