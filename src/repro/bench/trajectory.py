"""Perf-trajectory records: append-only benchmark summaries on disk.

ROADMAP's north star wants the repository to carry its own performance
history, so regressions show up in review rather than in a rerun months
later.  Each benchmarked run appends one small summary record — a config
digest plus the headline numbers (median step time, masked-latency
fraction, critical-path compute share) — to ``BENCH_critpath.json`` at
the repo root; ``repro bench-diff`` compares two records (or the last
two with matching digests) and flags >10 % step-time regressions.

The file is a JSON array of plain dicts: human-diffable and trivially
loadable.  Append is read-modify-write, guarded against concurrent
writers (parallel sweep workers all log here) by an advisory lock on a
``.lock`` sidecar plus an atomic tempfile + rename of the array itself,
so two simultaneous appends serialize instead of losing records or
tearing the JSON.

Records come in two schemas.  v1 carries the headline numbers only;
v2 (``schema == 2``, built by :mod:`repro.obs.ledger`) additionally
carries the full critical-path component decomposition (``critpath``)
and the wall-clock phase profile (``profile``), which is what lets
``repro compare`` explain *why* two runs differ instead of just that
they do.  ``from_dict`` accepts both, so old trajectory files keep
loading forever.

Appends can deduplicate: with ``dedup=True`` a record identical to the
file's last one (same digest and same deterministic metrics — virtual
time is bit-reproducible, so a true re-run *is* byte-identical where it
matters) is silently skipped, keeping repeated local perf-smoke runs
from bloating the committed trajectory.  Wall-clock-dependent fields
(``created``, overhead measurements in ``extra``) are deliberately
ignored by the identity check.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

#: Default trajectory file, relative to the current working directory
#: (the repo root in CI and normal development).
DEFAULT_PATH = "BENCH_critpath.json"

#: Relative step-time increase treated as a regression by compare().
REGRESSION_THRESHOLD = 0.10


def config_digest(config: Dict[str, Any]) -> str:
    """Short stable digest of a run configuration.

    Canonical-JSON SHA-1, truncated: enough to match "same config, new
    run" pairs across the trajectory without storing the whole config
    twice.
    """
    canon = json.dumps(config, sort_keys=True, separators=(",", ":"),
                       default=str)
    return hashlib.sha1(canon.encode()).hexdigest()[:12]


@dataclass
class RunRecord:
    """One benchmarked run's summary in the trajectory file."""

    name: str                         # e.g. "stencil:8x64@0ms"
    config: Dict[str, Any]
    time_per_step_s: float
    masked_fraction: Optional[float] = None
    critpath_compute_share: Optional[float] = None
    digest: str = ""
    #: Unix timestamp of the run (0 when the caller wants determinism).
    created: float = 0.0
    extra: Dict[str, Any] = field(default_factory=dict)
    #: Record schema: 1 = headline numbers only; 2 adds the critpath
    #: decomposition and wall-clock profile (the run-ledger format).
    schema: int = 1
    #: v2: critical-path component totals over the attributed window
    #: (``{component}_s`` per component, plus ``wall_s`` / ``steps`` /
    #: ``residual_s``); ``None`` on v1 records.
    critpath: Optional[Dict[str, Any]] = None
    #: v2: wall-clock phase profile from the self-profiler
    #: (:meth:`repro.obs.profiler.WallProfiler.summary`); optional.
    profile: Optional[Dict[str, Any]] = None

    def __post_init__(self) -> None:
        if not self.digest:
            self.digest = config_digest(self.config)

    def to_dict(self) -> Dict[str, Any]:
        d = asdict(self)
        # v2 payloads are omitted when absent so v1 records round-trip
        # to the same compact shape they always had.
        if d.get("critpath") is None:
            d.pop("critpath", None)
        if d.get("profile") is None:
            d.pop("profile", None)
        return d

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "RunRecord":
        known = {k: d[k] for k in
                 ("name", "config", "time_per_step_s", "masked_fraction",
                  "critpath_compute_share", "digest", "created", "extra",
                  "schema", "critpath", "profile")
                 if k in d}
        return cls(**known)

    def same_run(self, other: "RunRecord") -> bool:
        """Whether *other* is a byte-identical re-run of this record.

        Compares the config digest and every *deterministic* metric —
        virtual time is bit-reproducible, so two honest runs of the same
        config agree exactly on all of these.  Wall-clock-dependent
        payloads (``created``, the profile, overheads in ``extra``) are
        excluded: they differ on every run without meaning anything.
        """
        return (self.digest == other.digest
                and self.schema == other.schema
                and self.name == other.name
                and self.time_per_step_s == other.time_per_step_s
                and self.masked_fraction == other.masked_fraction
                and self.critpath_compute_share
                == other.critpath_compute_share
                and self.critpath == other.critpath)


def load_records(path: str = DEFAULT_PATH) -> List[RunRecord]:
    """All records in *path* (oldest first); empty list if absent."""
    if not os.path.exists(path):
        return []
    with open(path) as fh:
        raw = json.load(fh)
    if not isinstance(raw, list):
        raise ValueError(f"{path}: expected a JSON array of records")
    return [RunRecord.from_dict(d) for d in raw]


@contextmanager
def _append_lock(path: str):
    """Advisory exclusive lock serializing appends to *path*.

    Taken on a ``.lock`` sidecar (never on the data file, whose inode is
    replaced by the atomic rename below).  On platforms without
    ``fcntl`` the lock degrades to a no-op; the atomic rename still
    guarantees readers never see a torn file.
    """
    if fcntl is None:
        yield
        return
    lock_path = path + ".lock"
    with open(lock_path, "w") as fh:
        fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(fh.fileno(), fcntl.LOCK_UN)


def append_record(record: RunRecord, path: str = DEFAULT_PATH,
                  stamp: bool = True, dedup: bool = False) -> int:
    """Append *record* to *path*; returns the resulting record count.

    Safe under concurrent writers: the read-modify-write cycle runs
    under an advisory file lock, and the new array lands via tempfile +
    ``os.replace`` so a reader (or a crash) never observes a partial
    write.

    With ``dedup=True``, a record that is the same deterministic run as
    the file's **last** record (see :meth:`RunRecord.same_run`) is not
    appended — repeated local perf-smoke runs stop bloating the
    trajectory.  A genuine change to any metric breaks the identity and
    appends as usual, so regression detection is unaffected.
    """
    if stamp and not record.created:
        record.created = time.time()
    with _append_lock(path):
        records = load_records(path)
        if dedup and records and records[-1].same_run(record):
            return len(records)
        records.append(record)
        directory = os.path.dirname(os.path.abspath(path))
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump([r.to_dict() for r in records], fh, indent=1)
                fh.write("\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return len(records)


@dataclass
class Comparison:
    """Outcome of comparing a new record against a baseline."""

    baseline: RunRecord
    candidate: RunRecord
    threshold: float = REGRESSION_THRESHOLD

    @property
    def ratio(self) -> float:
        """candidate / baseline step time (1.0 = unchanged)."""
        if self.baseline.time_per_step_s <= 0:
            return float("inf") if self.candidate.time_per_step_s > 0 else 1.0
        return self.candidate.time_per_step_s / self.baseline.time_per_step_s

    @property
    def regressed(self) -> bool:
        return self.ratio > 1.0 + self.threshold

    @property
    def improved(self) -> bool:
        return self.ratio < 1.0 - self.threshold

    @property
    def config_changed(self) -> bool:
        return self.baseline.digest != self.candidate.digest

    def render(self) -> str:
        verdict = ("REGRESSION" if self.regressed
                   else "improved" if self.improved else "ok")
        lines = [
            f"baseline  {self.baseline.name}  "
            f"{self.baseline.time_per_step_s * 1e3:.3f} ms/step  "
            f"(digest {self.baseline.digest})",
            f"candidate {self.candidate.name}  "
            f"{self.candidate.time_per_step_s * 1e3:.3f} ms/step  "
            f"(digest {self.candidate.digest})",
            f"ratio     {self.ratio:.3f}x  "
            f"(threshold +{self.threshold:.0%})  -> {verdict}",
        ]
        if self.config_changed:
            lines.append("note      config digests differ: the comparison "
                         "crosses configurations")
        for key, attr in (("masked fraction", "masked_fraction"),
                          ("critpath compute share",
                           "critpath_compute_share")):
            b = getattr(self.baseline, attr)
            c = getattr(self.candidate, attr)
            if b is not None and c is not None:
                lines.append(f"{key:24s} {b:.3f} -> {c:.3f}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "baseline": self.baseline.to_dict(),
            "candidate": self.candidate.to_dict(),
            "ratio": self.ratio,
            "threshold": self.threshold,
            "regressed": self.regressed,
            "improved": self.improved,
            "config_changed": self.config_changed,
        }


def compare(baseline: RunRecord, candidate: RunRecord,
            threshold: float = REGRESSION_THRESHOLD) -> Comparison:
    """Compare two records; ``.regressed`` flags a >threshold slowdown."""
    return Comparison(baseline=baseline, candidate=candidate,
                      threshold=threshold)


def latest_pair(records: Sequence[RunRecord],
                digest: Optional[str] = None
                ) -> Optional[Tuple[RunRecord, RunRecord]]:
    """The two most recent records sharing a digest (or the given one).

    Returns ``(baseline, candidate)`` with the candidate newest, or
    ``None`` when no digest occurs twice.
    """
    wanted = digest
    if wanted is None:
        seen: Dict[str, RunRecord] = {}
        for rec in reversed(records):          # newest first
            if rec.digest in seen:
                return rec, seen[rec.digest]
            seen[rec.digest] = rec
        return None
    matching = [r for r in records if r.digest == wanted]
    if len(matching) < 2:
        return None
    return matching[-2], matching[-1]
