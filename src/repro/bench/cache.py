"""Content-addressed cache of completed experiment runs.

A sweep re-run after an unrelated edit should not re-simulate every
configuration.  Each completed :class:`~repro.bench.records.ExperimentPoint`
is stored under a key derived from everything that determines its value:

* the spec's canonical config dict (app, sizes, latency, steps, seed,
  environment, payload);
* the package version (bumped when simulation behaviour changes);
* a cache schema number (bumped when the on-disk format changes).

Entries are single JSON files written atomically (tempfile + rename in
the same directory), so concurrent sweep workers — or two sweeps sharing
a cache directory — never observe torn entries.  A corrupt or unreadable
entry is treated as a miss, never an error.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Any, Dict, Optional

from repro._version import __version__
from repro.bench.records import ExperimentPoint
from repro.bench.specs import RunSpec

#: Bumped when the entry format (not the simulated behaviour) changes.
CACHE_SCHEMA = 1

#: Default cache directory, relative to the current working directory.
DEFAULT_CACHE_DIR = ".repro-cache"


def spec_key(spec: RunSpec, version: str = __version__) -> str:
    """Content hash identifying *spec*'s result.

    Canonical-JSON SHA-256 over (schema, package version, spec config):
    any change to the configuration or to the simulating code's declared
    version produces a different key, so stale results are simply never
    found rather than needing invalidation logic.
    """
    payload = {"schema": CACHE_SCHEMA, "version": version,
               "config": spec.config()}
    canon = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode()).hexdigest()


class RunCache:
    """Directory of content-addressed experiment results."""

    def __init__(self, root: str = DEFAULT_CACHE_DIR,
                 version: str = __version__) -> None:
        self.root = root
        self.version = version
        self.hits = 0
        self.misses = 0
        self.puts = 0

    def _path(self, key: str) -> str:
        # Two-level fanout keeps directory listings short on big sweeps.
        return os.path.join(self.root, key[:2], key + ".json")

    def get(self, spec: RunSpec) -> Optional[ExperimentPoint]:
        """The cached result for *spec*, or ``None`` on a miss."""
        path = self._path(spec_key(spec, self.version))
        try:
            with open(path) as fh:
                doc = json.load(fh)
            point = ExperimentPoint.from_dict(doc["point"])
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return point

    def put(self, spec: RunSpec, point: ExperimentPoint) -> None:
        """Store *point* as *spec*'s result (atomic write-rename)."""
        key = spec_key(spec, self.version)
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        doc = {"key": key, "schema": CACHE_SCHEMA, "version": self.version,
               "config": spec.config(), "point": point.to_dict()}
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                   suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(doc, fh, indent=1)
                fh.write("\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.puts += 1

    def stats(self) -> Dict[str, Any]:
        return {"hits": self.hits, "misses": self.misses,
                "puts": self.puts, "root": self.root}
