"""Result records and serialization for the benchmark harness.

Every experiment produces :class:`ExperimentPoint` rows; a sweep is a
list of points; tables/figures are renderings of those lists.  Records
serialize to plain dicts (JSON-friendly) so benchmark output can be
saved and diffed across runs.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List

from repro.units import to_ms


@dataclass(frozen=True)
class ExperimentPoint:
    """One (configuration -> measurement) row of an experiment."""

    experiment: str              # "fig3", "table1", "fig4", "table2", ...
    app: str                     # "stencil" | "leanmd"
    environment: str             # "artificial" | "teragrid" | "single"
    pes: int
    objects: int                 # virtualization degree (ranks for AMPI)
    latency_ms: float            # injected one-way latency (artificial)
    time_per_step: float         # seconds
    steps: int
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def time_per_step_ms(self) -> float:
        return to_ms(self.time_per_step)

    def to_dict(self) -> Dict[str, Any]:
        d = asdict(self)
        d["time_per_step_ms"] = self.time_per_step_ms
        return d

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "ExperimentPoint":
        """Inverse of :meth:`to_dict` (derived fields are ignored).

        The run cache round-trips points through JSON; this must stay
        lossless for every field the simulation produces.
        """
        return cls(
            experiment=d["experiment"], app=d["app"],
            environment=d["environment"], pes=int(d["pes"]),
            objects=int(d["objects"]), latency_ms=float(d["latency_ms"]),
            time_per_step=float(d["time_per_step"]), steps=int(d["steps"]),
            extra=dict(d.get("extra") or {}))


@dataclass
class Series:
    """One plotted line: a label plus (x, y) points."""

    label: str
    x: List[float] = field(default_factory=list)
    y: List[float] = field(default_factory=list)

    def append(self, x: float, y: float) -> None:
        self.x.append(x)
        self.y.append(y)


def group_series(points: List[ExperimentPoint], by: str = "objects",
                 x: str = "latency_ms", y: str = "time_per_step_ms"
                 ) -> List[Series]:
    """Group experiment points into plot series.

    Parameters
    ----------
    by:
        Attribute distinguishing lines (e.g. virtualization degree).
    x, y:
        Attributes (or properties) providing coordinates.
    """
    buckets: Dict[Any, Series] = {}
    for p in points:
        key = getattr(p, by)
        series = buckets.setdefault(key, Series(label=f"{by}={key}"))
        series.append(float(getattr(p, x)), float(getattr(p, y)))
    return [buckets[k] for k in sorted(buckets)]
