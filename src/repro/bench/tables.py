"""Paper-style table rendering.

Formats sweep results into the exact row layout of the paper's Tables 1
and 2, side by side with the paper's published values so the comparison
is immediate in benchmark output and EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.bench.records import ExperimentPoint

#: Paper Table 1 published values: (PEs, objects) -> (artificial, real),
#: in ms/step.
PAPER_TABLE1: Dict[Tuple[int, int], Tuple[float, float]] = {
    (2, 4): (85.774, 96.597), (2, 16): (75.050, 79.488),
    (2, 64): (80.436, 77.170),
    (4, 4): (85.095, 90.815), (4, 16): (35.018, 35.546),
    (4, 64): (36.667, 37.345),
    (8, 16): (25.468, 26.237), (8, 64): (17.596, 18.444),
    (8, 256): (19.853, 20.853),
    (16, 16): (17.114, 17.752), (16, 64): (10.959, 11.588),
    (16, 256): (10.017, 10.913),
    (32, 64): (6.756, 7.405), (32, 256): (6.022, 6.622),
    (32, 1024): (8.090, 8.090),
    (64, 64): (6.708, 7.364), (64, 256): (3.963, 4.459),
    (64, 1024): (4.928, 4.906),
}

#: Paper Table 2 published values: PEs -> (artificial, real).  The
#: paper's column header says ms/step but the values are seconds (§5.3
#: gives ~8 s/step sequential); we keep seconds and say so.
PAPER_TABLE2: Dict[int, Tuple[float, float]] = {
    2: (3.924, 3.924), 4: (2.021, 2.022), 8: (1.015, 1.018),
    16: (0.559, 0.550), 32: (0.302, 0.299), 64: (0.239, 0.260),
}


def _index_points(points: List[ExperimentPoint]
                  ) -> Dict[Tuple[int, int, str], ExperimentPoint]:
    return {(p.pes, p.objects, p.environment): p for p in points}


def render_table1(points: List[ExperimentPoint]) -> str:
    """Table 1 layout: measured vs paper, artificial and real columns."""
    idx = _index_points(points)
    lines = [
        "Table 1 - five-point stencil, ms/step "
        "(artificial 1.725 ms vs real TeraGrid model)",
        f"{'PEs':>4} {'Objs':>5} | {'art(ours)':>10} {'art(paper)':>10} "
        f"| {'real(ours)':>10} {'real(paper)':>11}",
        "-" * 62,
    ]
    for (pes, objs), (p_art, p_real) in PAPER_TABLE1.items():
        ours_art = idx.get((pes, objs, "artificial"))
        ours_real = idx.get((pes, objs, "teragrid"))
        art = f"{ours_art.time_per_step_ms:10.3f}" if ours_art else " " * 10
        real = f"{ours_real.time_per_step_ms:10.3f}" if ours_real else " " * 10
        lines.append(f"{pes:>4} {objs:>5} | {art} {p_art:10.3f} "
                     f"| {real} {p_real:11.3f}")
    return "\n".join(lines)


def render_table2(points: List[ExperimentPoint]) -> str:
    """Table 2 layout: LeanMD seconds/step, ours vs paper."""
    idx = {(p.pes, p.environment): p for p in points}
    lines = [
        "Table 2 - LeanMD, s/step (artificial 1.725 ms vs real TeraGrid "
        "model; the paper's 'ms/step' header is a typo for seconds)",
        f"{'PEs':>4} | {'art(ours)':>10} {'art(paper)':>10} "
        f"| {'real(ours)':>10} {'real(paper)':>11}",
        "-" * 56,
    ]
    for pes, (p_art, p_real) in PAPER_TABLE2.items():
        ours_art = idx.get((pes, "artificial"))
        ours_real = idx.get((pes, "teragrid"))
        art = f"{ours_art.time_per_step:10.3f}" if ours_art else " " * 10
        real = f"{ours_real.time_per_step:10.3f}" if ours_real else " " * 10
        lines.append(f"{pes:>4} | {art} {p_art:10.3f} "
                     f"| {real} {p_real:11.3f}")
    return "\n".join(lines)


def trend_agreement(points: List[ExperimentPoint],
                    paper: Dict, key_fn) -> float:
    """Fraction of row-pairs whose ordering matches the paper's.

    A scale-free figure of merit used by the benchmark assertions: for
    every pair of configurations, do we agree with the paper about which
    one is faster?  1.0 = all orderings match.
    """
    ours: Dict = {}
    for p in points:
        k = key_fn(p)
        if k in paper:
            ours[k] = p.time_per_step
    keys = [k for k in paper if k in ours]
    agree = total = 0
    for i, a in enumerate(keys):
        for b in keys[i + 1:]:
            pa = paper[a][0] if isinstance(paper[a], tuple) else paper[a]
            pb = paper[b][0] if isinstance(paper[b], tuple) else paper[b]
            if pa == pb:
                continue
            total += 1
            if (ours[a] < ours[b]) == (pa < pb):
                agree += 1
    return agree / total if total else 1.0
