"""Command-line interface: regenerate the paper's artefacts.

Usage (any artefact, directly from a shell)::

    python -m repro table1 [--steps N] [--rows 2x16 4x64 ...]
    python -m repro table2 [--steps N] [--pes 2 4 ...]
    python -m repro fig3   [--pes 16 ...] [--latencies 0 4 32] [--steps N]
    python -m repro fig4   [--pes 2 32] [--latencies 1 32 256] [--steps N]
    python -m repro demo   [--json]
    python -m repro trace  [--app stencil|leanmd] [--out run.trace.json]
                           [--events-out run.events.jsonl] [--json]
    python -m repro critpath [--app stencil|leanmd] [--latency MS]
                             [--grid MS ...] [--per-step] [--json]
    python -m repro health [--app stencil|leanmd] [--latency MS]
                           [--loss P] [--budget F] [--json] [--out PATH]
    python -m repro netview [--latency MS] [--routing flat|hierarchical]
                            [--streams N] [--top K] [--json]
                            [--trace-out PATH]
    python -m repro objview [--app stencil|leanmd] [--latency MS]
                            [--top K] [--json] [--trace-out PATH]
                            [--ledger-out PATH]
    python -m repro sweep {fig3,fig3c,fig4,table1,table2} [--jobs N]
                          [--no-cache] [--cache-dir DIR]
                          [--stats-out PATH] [--steps N] [...subset flags]
    python -m repro bench-diff [--path BENCH_critpath.json]
                               [--digest HEX | --baseline I --candidate J]
    python -m repro compare BASELINE CANDIDATE [--path FILE] [--json]
                            [--trace-out PATH] [--threshold F]

The full default sweeps take a few minutes; the subsetting flags let
you reproduce a single panel or row in seconds.  ``repro trace`` runs
one traced configuration and prints the latency-masking report
(utilization, comm/compute, masked-latency fraction); ``--out`` exports
a Chrome trace-event file for chrome://tracing / Perfetto.  ``repro
critpath`` runs one traced configuration, attributes each step's wall
time along the causal critical path (compute / WAN in-flight / queueing
/ retransmit stall) and predicts the Figure-3 knee from that single
run.  ``repro health`` runs one configuration with the fixed-memory
telemetry sampler and rule-based watchdog enabled, then prints the
health digest (sparklines, fired alerts, observability overhead);
``--out`` appends the structured health events as JSON lines.  ``repro
bench-diff`` compares two perf-trajectory records and
exits non-zero on a >10 % step-time regression; when both records are
schema-2 ledger records it also prints the per-component critical-path
diff.  ``repro compare`` is the full differential view: given two
ledger records (by index into a trajectory file, or as standalone
files), it attributes the step-time delta to critical-path components
exactly, diffs the wall-clock phase profiles and net roll-ups, and can
write a side-by-side Chrome trace; ``repro critpath`` and ``repro
netview`` grow ``--ledger-out PATH`` to emit those records (with the
self-profiler enabled for the run).  ``repro objview`` is the
Projections-style object view: per-chare compute/grain/traffic
profiles, the object×object communication matrix, per-object
critical-path blame, and the decomposition advisor's split / merge /
migrate suggestions ranked by predicted savings.  ``repro sweep`` runs
any artefact's configurations through the parallel executor — ``--jobs
N`` fans out over N worker processes, the content-addressed run cache
skips configurations already computed, and the rendered artefact is
bit-identical to a serial run for any worker count.  The table and figure
commands stay text-only, matching the paper's artefacts; ``demo``,
``trace`` and ``critpath`` take ``--json`` for machine-readable output.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence, Tuple

from repro.bench.figures import (
    render_fig3_collectives,
    render_fig3_panel,
    render_fig4,
)
from repro.bench.sweep import (
    FIG3_LATENCIES_MS,
    FIG3_PANEL_OBJECTS,
    FIG4_LATENCIES_MS,
    PE_COUNTS,
    TABLE1_ROWS,
    specs_fig3,
    specs_fig3_collectives,
    specs_fig4,
    specs_table1,
    specs_table2,
    sweep_fig3,
    sweep_fig4,
    sweep_table1,
    sweep_table2,
)
from repro.bench.tables import render_table1, render_table2


def _parse_rows(values: Sequence[str]) -> Tuple[Tuple[int, int], ...]:
    rows = []
    for v in values:
        try:
            pes, objs = v.lower().split("x")
            rows.append((int(pes), int(objs)))
        except ValueError:
            raise SystemExit(
                f"row {v!r} is not of the form PESxOBJECTS (e.g. 8x64)")
    return tuple(rows)


def _add_output_options(p, *, trace_flag: str = "--trace-out",
                        trace_help: str = "write Chrome trace-event JSON "
                        "here (open in chrome://tracing or Perfetto)",
                        ledger: bool = False,
                        json_help: str = "print the report as JSON "
                        "instead of text") -> None:
    """Shared output plumbing for the one-run subcommands.

    Registers the Chrome-trace path (``--out`` or ``--trace-out``,
    whichever the command historically used — both land in
    ``args.trace_out``), the optional ``--ledger-out`` run-ledger path,
    and ``--json``, so every subcommand's output surface shares one
    dest naming and one help voice.
    """
    p.add_argument(trace_flag, dest="trace_out", default=None,
                   metavar="PATH", help=trace_help)
    if ledger:
        p.add_argument("--ledger-out", default=None, metavar="PATH",
                       help="append a schema-2 run-ledger record (full "
                            "critpath decomposition + wall-clock profile "
                            "+ per-object blame) here for 'repro "
                            "compare'; enables the self-profiler for "
                            "the run")
    p.add_argument("--json", action="store_true", help=json_help)


def _validate_run(args) -> None:
    """Common sanity checks for the one-run subcommands."""
    if args.pes < 2 or args.pes % 2:
        raise SystemExit(f"--pes must be even and >= 2, got {args.pes}")
    if args.latency < 0:
        raise SystemExit(f"--latency must be >= 0, got {args.latency}")


def _write_chrome_trace(env, path, report, health_events=None) -> None:
    """Validate and write the run's Chrome trace; note it in the report."""
    from repro.obs.export import chrome_trace, validate_chrome_trace

    doc = chrome_trace(env.tracer, health_events)
    validate_chrome_trace(doc)
    with open(path, "w") as fh:
        json.dump(doc, fh)
    report.extra["chrome_trace"] = path


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce Koenig & Kale (IPPS 2005): message-driven "
                    "objects masking Grid latency.")
    sub = parser.add_subparsers(dest="command", required=True)

    t1 = sub.add_parser("table1", help="stencil: artificial vs real grid")
    t1.add_argument("--steps", type=int, default=10)
    t1.add_argument("--rows", nargs="+", default=None, metavar="PESxOBJS",
                    help="subset of rows, e.g. --rows 2x16 8x64")

    t2 = sub.add_parser("table2", help="LeanMD: artificial vs real grid")
    t2.add_argument("--steps", type=int, default=8)
    t2.add_argument("--pes", nargs="+", type=int, default=None)

    f3 = sub.add_parser("fig3", help="stencil time/step vs latency")
    f3.add_argument("--pes", nargs="+", type=int, default=None,
                    help="which panels (default: all of 2..64)")
    f3.add_argument("--latencies", nargs="+", type=float, default=None,
                    help="one-way latencies in ms")
    f3.add_argument("--steps", type=int, default=10)

    f4 = sub.add_parser("fig4", help="LeanMD time/step vs latency")
    f4.add_argument("--pes", nargs="+", type=int, default=None)
    f4.add_argument("--latencies", nargs="+", type=float, default=None)
    f4.add_argument("--steps", type=int, default=8)

    demo = sub.add_parser("demo",
                          help="30-second latency-masking demonstration")
    demo.add_argument("--json", action="store_true",
                      help="machine-readable output (one row per run)")

    tr = sub.add_parser("trace", help="run one traced configuration and "
                        "report overlap / export a Chrome trace")
    tr.add_argument("--app", choices=("stencil", "leanmd"),
                    default="stencil")
    tr.add_argument("--pes", type=int, default=8)
    tr.add_argument("--objects", type=int, default=64,
                    help="virtualization degree (stencil only)")
    tr.add_argument("--mesh", type=int, default=1024, metavar="N",
                    help="stencil mesh edge (NxN; Figure 3 uses 2048)")
    tr.add_argument("--latency", type=float, default=8.0,
                    help="one-way WAN latency in ms")
    tr.add_argument("--steps", type=int, default=10)
    tr.add_argument("--events-out", default=None, metavar="PATH",
                    help="write a JSON-lines structured event log here")
    _add_output_options(tr, trace_flag="--out")

    cp = sub.add_parser("critpath", help="critical-path attribution and "
                        "knee prediction from one traced run")
    cp.add_argument("--app", choices=("stencil", "leanmd"),
                    default="stencil")
    cp.add_argument("--pes", type=int, default=8)
    cp.add_argument("--objects", type=int, default=64,
                    help="virtualization degree (stencil only)")
    cp.add_argument("--mesh", type=int, default=1024, metavar="N",
                    help="stencil mesh edge (NxN; Figure 3 uses 2048)")
    cp.add_argument("--latency", type=float, default=0.0,
                    help="one-way WAN latency of the traced run (ms); "
                         "the knee is predicted from this single run")
    cp.add_argument("--steps", type=int, default=10)
    cp.add_argument("--grid", nargs="+", type=float, default=None,
                    metavar="MS", help="hypothetical one-way latencies to "
                    "sweep in the what-if replay (default: Figure 3's)")
    cp.add_argument("--tolerance", type=float, default=1.5,
                    help="knee tolerance: largest latency with predicted "
                         "T(L) <= tolerance x baseline (default 1.5)")
    cp.add_argument("--per-step", action="store_true",
                    help="print the per-step attribution table too")
    _add_output_options(cp, trace_flag="--out",
                        trace_help="write the Chrome trace (with causal "
                                   "flow events) here",
                        ledger=True)

    hl = sub.add_parser("health", help="run one configuration with "
                        "telemetry + watchdog and print the health digest")
    hl.add_argument("--app", choices=("stencil", "leanmd"),
                    default="stencil")
    hl.add_argument("--pes", type=int, default=8)
    hl.add_argument("--objects", type=int, default=64,
                    help="virtualization degree (stencil only)")
    hl.add_argument("--mesh", type=int, default=512, metavar="N",
                    help="stencil mesh edge (NxN)")
    hl.add_argument("--latency", type=float, default=8.0,
                    help="one-way WAN latency in ms")
    hl.add_argument("--steps", type=int, default=8)
    hl.add_argument("--loss", type=float, default=0.0,
                    help="WAN loss probability; > 0 switches to the "
                         "lossy-WAN environment with the reliable "
                         "transport (retransmit-storm territory)")
    hl.add_argument("--interval", type=float, default=1.0,
                    help="sampling interval in virtual ms")
    hl.add_argument("--budget", type=float, default=None,
                    help="observability overhead budget as a wall-time "
                         "fraction; over budget, the governor degrades "
                         "full tracing -> sampling -> counters")
    hl.add_argument("--out", default=None, metavar="PATH",
                    help="append structured health events here (JSONL)")
    _add_output_options(hl, trace_help="write a Chrome trace with "
                        "health-event markers here (enables full tracing)")

    nv = sub.add_parser("netview", help="network flight recorder: per-link "
                        "utilization, queue depths and top wire-time "
                        "messages from one traced run")
    nv.add_argument("--pes", type=int, default=8)
    nv.add_argument("--objects", type=int, default=64,
                    help="virtualization degree")
    nv.add_argument("--mesh", type=int, default=1024, metavar="N",
                    help="stencil mesh edge (NxN; Figure 3 uses 2048)")
    nv.add_argument("--latency", type=float, default=8.0,
                    help="one-way WAN latency in ms")
    nv.add_argument("--steps", type=int, default=10)
    nv.add_argument("--routing", choices=("flat", "hierarchical"),
                    default=None,
                    help="collective downward routing (default: config's)")
    nv.add_argument("--streams", type=int, default=0, metavar="N",
                    help="stripe the WAN across N parallel streams "
                         "(0 = no striping)")
    nv.add_argument("--top", type=int, default=10, metavar="K",
                    help="how many top-wire-time messages to list")
    _add_output_options(nv, trace_help="write a Chrome trace with one "
                        "lane per WAN link/stream here", ledger=True)

    ov = sub.add_parser("objview", help="Projections-style object view: "
                        "per-chare profiles, comm matrix, grain "
                        "analysis, blame and the decomposition advisor")
    ov.add_argument("--app", choices=("stencil", "leanmd"),
                    default="stencil")
    ov.add_argument("--pes", type=int, default=8)
    ov.add_argument("--objects", type=int, default=64,
                    help="virtualization degree (stencil only)")
    ov.add_argument("--mesh", type=int, default=1024, metavar="N",
                    help="stencil mesh edge (NxN; Figure 3 uses 2048)")
    ov.add_argument("--latency", type=float, default=8.0,
                    help="one-way WAN latency in ms")
    ov.add_argument("--steps", type=int, default=10)
    ov.add_argument("--top", type=int, default=10, metavar="K",
                    help="objects listed in each table")
    _add_output_options(ov, trace_help="write a Chrome trace with one "
                        "lane per object and comm-matrix counters here",
                        ledger=True)

    sw = sub.add_parser("sweep", help="run a paper sweep through the "
                        "parallel executor with the run cache")
    sw.add_argument("target",
                    choices=("fig3", "fig3c", "fig4", "table1", "table2"),
                    help="which artefact's configurations to run "
                         "(fig3c: collective-routing comparison)")
    sw.add_argument("--jobs", type=int, default=None, metavar="N",
                    help="worker processes (default: $REPRO_BENCH_JOBS "
                         "or 1); results are identical for any N")
    sw.add_argument("--no-cache", action="store_true",
                    help="always re-run; do not read or write the cache")
    sw.add_argument("--cache-dir", default=None, metavar="DIR",
                    help="run-cache directory (default .repro-cache)")
    sw.add_argument("--stats-out", default=None, metavar="PATH",
                    help="write executor statistics (totals, cache hits, "
                         "wall time) as JSON here")
    sw.add_argument("--steps", type=int, default=None,
                    help="steps per run (default: the artefact's)")
    sw.add_argument("--panels", nargs="+", type=int, default=None,
                    help="fig3: subset of PE panels")
    sw.add_argument("--pes", nargs="+", type=int, default=None,
                    help="fig4/table2: subset of PE counts")
    sw.add_argument("--latencies", nargs="+", type=float, default=None,
                    help="fig3/fig4: one-way latencies in ms")
    sw.add_argument("--rows", nargs="+", default=None, metavar="PESxOBJS",
                    help="table1: subset of rows, e.g. --rows 2x16 8x64")
    sw.add_argument("--quiet", action="store_true",
                    help="suppress per-run progress lines (stderr)")

    bd = sub.add_parser("bench-diff", help="compare two perf-trajectory "
                        "records; exit 1 on >threshold regression")
    bd.add_argument("--path", default=None, metavar="FILE",
                    help="trajectory file (default BENCH_critpath.json)")
    bd.add_argument("--digest", default=None, metavar="HEX",
                    help="compare the last two records with this config "
                         "digest (default: last two sharing any digest)")
    bd.add_argument("--baseline", type=int, default=None, metavar="I",
                    help="explicit baseline record index (0-based)")
    bd.add_argument("--candidate", type=int, default=None, metavar="J",
                    help="explicit candidate record index (0-based)")
    bd.add_argument("--threshold", type=float, default=None,
                    help="regression threshold as a fraction "
                         "(default 0.10)")
    bd.add_argument("--json", action="store_true",
                    help="print the comparison as JSON instead of text")

    cm = sub.add_parser("compare", help="differential run analysis: "
                        "attribute a step-time delta to critical-path "
                        "components exactly")
    cm.add_argument("baseline", metavar="BASELINE",
                    help="baseline record: an index into --path "
                         "(0-based, negatives allowed) or a JSON file "
                         "holding a record / ledger entry")
    cm.add_argument("candidate", metavar="CANDIDATE",
                    help="candidate record, same forms as BASELINE")
    cm.add_argument("--path", default=None, metavar="FILE",
                    help="trajectory/ledger file indices refer into "
                         "(default BENCH_critpath.json)")
    cm.add_argument("--threshold", type=float, default=None,
                    help="neutral band as a fraction of the baseline's "
                         "total step time (default 0.02)")
    _add_output_options(cm, trace_help="write a side-by-side Chrome "
                        "trace (one process per run, critpath slices) "
                        "here",
                        json_help="print the comparison as JSON instead "
                                  "of text")
    return parser


def cmd_table1(args, out) -> None:
    rows = _parse_rows(args.rows) if args.rows else TABLE1_ROWS
    for pes, objs in rows:
        if (pes, objs) not in TABLE1_ROWS:
            raise SystemExit(f"({pes}, {objs}) is not a Table-1 row; "
                             f"valid: {TABLE1_ROWS}")
    points = sweep_table1(rows=rows, steps=args.steps)
    print(render_table1(points), file=out)


def cmd_table2(args, out) -> None:
    pes = tuple(args.pes) if args.pes else PE_COUNTS
    points = sweep_table2(pe_counts=pes, steps=args.steps)
    print(render_table2(points), file=out)


def cmd_fig3(args, out) -> None:
    panels = args.pes if args.pes else list(PE_COUNTS)
    for p in panels:
        if p not in FIG3_PANEL_OBJECTS:
            raise SystemExit(
                f"no Figure-3 panel for {p} PEs; valid: {sorted(FIG3_PANEL_OBJECTS)}")
    latencies = args.latencies if args.latencies else FIG3_LATENCIES_MS
    points = sweep_fig3(panels=panels, latencies_ms=latencies,
                        steps=args.steps)
    for p in panels:
        print(render_fig3_panel(points, p), file=out)
        print(file=out)


def cmd_fig4(args, out) -> None:
    pes = args.pes if args.pes else list(PE_COUNTS)
    latencies = args.latencies if args.latencies else FIG4_LATENCIES_MS
    points = sweep_fig4(pe_counts=pes, latencies_ms=latencies,
                        steps=args.steps)
    print(render_fig4(points), file=out)


def cmd_demo(args, out) -> None:
    from repro.apps.stencil import StencilApp
    from repro.grid import artificial_latency_env
    from repro.units import ms

    as_json = getattr(args, "json", False)
    rows = []
    if not as_json:
        print("Latency masking in 4 runs (stencil, 8 PEs over two clusters):",
              file=out)
    for objects in (8, 128):
        for latency in (0.0, 8.0):
            env = artificial_latency_env(8, ms(latency))
            app = StencilApp(env, mesh=(1024, 1024), objects=objects,
                             payload="modeled")
            tps = app.run(10).time_per_step_ms
            row = {"pes": 8, "objects": objects, "latency_ms": latency,
                   "time_per_step_ms": tps}
            if env.aggregator is not None:
                row["masked_fraction"] = \
                    env.aggregator.masked_latency_fraction
            rows.append(row)
            if not as_json:
                print(f"  {objects:4d} objects, {latency:4.0f} ms latency -> "
                      f"{tps:7.2f} ms/step", file=out)
    if as_json:
        json.dump({"runs": rows}, out, indent=2)
        print(file=out)
    else:
        print("8 ms of wide-area latency: exposed at 1 object/PE, hidden at "
              "16/PE.", file=out)


def cmd_trace(args, out) -> None:
    from repro.grid import artificial_latency_env
    from repro.obs.export import write_event_log
    from repro.obs.report import build_report
    from repro.units import ms

    _validate_run(args)
    want_events = (args.trace_out is not None
                   or args.events_out is not None)
    env = artificial_latency_env(args.pes, ms(args.latency),
                                 trace=want_events)
    if args.app == "stencil":
        from repro.apps.stencil import StencilApp
        app = StencilApp(env, mesh=(args.mesh, args.mesh),
                         objects=args.objects, payload="modeled")
        app.run(args.steps)
    else:
        from repro.apps.leanmd import LeanMDApp
        app = LeanMDApp(env, cells=(4, 4, 4), atoms_per_cell=16,
                        payload="modeled")
        app.run(args.steps)

    report = build_report(env.aggregator)
    report.extra["app"] = args.app
    report.extra["pes"] = args.pes
    report.extra["latency_ms"] = args.latency
    report.extra["steps"] = args.steps
    if args.trace_out is not None:
        _write_chrome_trace(env, args.trace_out, report)
    if args.events_out is not None:
        lines = write_event_log(env.tracer, args.events_out)
        report.extra["event_log"] = args.events_out
        report.extra["event_log_lines"] = lines

    if args.json:
        json.dump(report.to_dict(), out, indent=2)
        print(file=out)
    else:
        print(f"{args.app}: {args.pes} PEs, {args.objects} objects, "
              f"{args.latency:g} ms one-way WAN, {args.steps} steps",
              file=out)
        print(file=out)
        print(report.render(), file=out)
        if args.trace_out is not None:
            print(f"\nChrome trace written to {args.trace_out} "
                  "(open in chrome://tracing or https://ui.perfetto.dev)",
                  file=out)
        if args.events_out is not None:
            print(f"Event log written to {args.events_out} "
                  f"({report.extra['event_log_lines']} records)", file=out)


def _emit_ledger(args, experiment: str, result, env, steps_attribution,
                 path: str, objects_blame=None) -> None:
    """Append one schema-2 ledger record for a CLI run to *path*.

    The record also lands content-addressed under ``.repro-cache/``
    (same fanout as the run cache).  Dedup is off: A/B ledger files
    built for ``repro compare`` want both records even when the runs
    are bit-identical — the all-neutral self-compare is the CI smoke.
    """
    from repro.obs.ledger import append_ledger, build_run_record

    app = getattr(args, "app", "stencil")
    config = {
        "experiment": experiment, "app": app,
        "environment": "artificial", "pes": args.pes,
        "objects": getattr(args, "objects", None),
        "latency_ms": args.latency, "steps": args.steps,
    }
    for key in ("mesh", "routing", "streams"):
        value = getattr(args, key, None)
        if value:
            config[key] = value
    record = build_run_record(
        name=f"{experiment}:{app}:{args.pes}x"
             f"{getattr(args, 'objects', 0)}@{args.latency:g}ms",
        config=config, result=result, env=env,
        steps_attribution=steps_attribution, objects_blame=objects_blame)
    append_ledger(record, path, cache_root=".repro-cache")


def cmd_critpath(args, out) -> None:
    from repro.grid import artificial_latency_env
    from repro.obs.critpath import (
        CausalGraph,
        per_step_attribution,
        predict_knee,
        render_attribution,
        summarize_attribution,
    )
    from repro.obs.report import build_report
    from repro.units import ms

    _validate_run(args)
    env = artificial_latency_env(args.pes, ms(args.latency), trace=True,
                                 profile=args.ledger_out is not None)
    t0 = env.now
    if args.app == "stencil":
        from repro.apps.stencil import StencilApp
        app = StencilApp(env, mesh=(args.mesh, args.mesh),
                         objects=args.objects, payload="modeled")
        result = app.run(args.steps)
    else:
        from repro.apps.leanmd import LeanMDApp
        app = LeanMDApp(env, cells=(4, 4, 4), atoms_per_cell=16,
                        payload="modeled")
        result = app.run(args.steps)

    graph = CausalGraph.from_tracer(env.tracer)
    boundaries = [t0] + [t0 + float(t) for t in result.step_times]
    steps = per_step_attribution(graph, boundaries)
    summary = summarize_attribution(steps, warmup=result.warmup)
    grid_ms = args.grid if args.grid else list(FIG3_LATENCIES_MS)
    knee = predict_knee(graph, boundaries, ms(args.latency),
                        [ms(x) for x in grid_ms],
                        tolerance=args.tolerance, warmup=result.warmup)

    report = build_report(env.aggregator)
    report.critpath = {**summary, "knee": knee.to_dict()}
    report.extra["app"] = args.app
    report.extra["pes"] = args.pes
    report.extra["latency_ms"] = args.latency
    report.extra["steps"] = args.steps
    if args.trace_out is not None:
        _write_chrome_trace(env, args.trace_out, report)
    if args.ledger_out is not None:
        _emit_ledger(args, "critpath", result, env, steps, args.ledger_out)
        report.extra["ledger"] = args.ledger_out

    if args.json:
        doc = report.to_dict()
        if args.per_step:
            doc["per_step"] = [att.to_dict() for att in steps]
        json.dump(doc, out, indent=2)
        print(file=out)
        return
    print(f"{args.app}: {args.pes} PEs, {args.objects} objects, "
          f"{args.latency:g} ms one-way WAN, {args.steps} steps",
          file=out)
    print(file=out)
    print(report.render(), file=out)
    if args.per_step:
        print(file=out)
        print(render_attribution(steps, warmup=result.warmup), file=out)
    print(file=out)
    pairs = "  ".join(
        f"{lat * 1e3:g}ms->{t * 1e3:.2f}"
        for lat, t in zip(knee.grid_s, knee.predicted_step_s))
    print(f"predicted T(L) ms/step: {pairs}", file=out)
    print(f"predicted knee: {knee.knee_s * 1e3:g} ms "
          f"(largest L with T(L) <= {knee.tolerance:g}x baseline)",
          file=out)
    if args.trace_out is not None:
        print(f"Chrome trace (with causal flows) written to "
              f"{args.trace_out}", file=out)


def cmd_health(args, out) -> None:
    from repro.grid import artificial_latency_env, lossy_wan_env
    from repro.obs.report import build_report, health_section
    from repro.obs.timeseries import SamplingPolicy
    from repro.units import ms

    _validate_run(args)
    if not (0.0 <= args.loss < 1.0):
        raise SystemExit(f"--loss must be in [0, 1), got {args.loss}")
    if args.interval <= 0:
        raise SystemExit(f"--interval must be > 0, got {args.interval}")
    policy = SamplingPolicy(interval=ms(args.interval),
                            overhead_budget=args.budget)
    want_trace = args.trace_out is not None
    if args.loss > 0:
        env = lossy_wan_env(args.pes, ms(args.latency), loss=args.loss,
                            trace=want_trace, sampling=policy, health=True)
    else:
        env = artificial_latency_env(args.pes, ms(args.latency),
                                     trace=want_trace, sampling=policy,
                                     health=True)
    if args.app == "stencil":
        from repro.apps.stencil import StencilApp
        app = StencilApp(env, mesh=(args.mesh, args.mesh),
                         objects=args.objects, payload="modeled")
        app.run(args.steps)
    else:
        from repro.apps.leanmd import LeanMDApp
        app = LeanMDApp(env, cells=(4, 4, 4), atoms_per_cell=16,
                        payload="modeled")
        app.run(args.steps)

    report = build_report(env.aggregator)
    report.health = health_section(env.health_events, env.governor)
    report.timeseries = env.sampler.summary()
    report.extra["app"] = args.app
    report.extra["pes"] = args.pes
    report.extra["objects"] = args.objects
    report.extra["latency_ms"] = args.latency
    report.extra["steps"] = args.steps
    if args.loss > 0:
        report.extra["loss"] = args.loss
    if args.out is not None:
        with open(args.out, "a") as fh:
            for event in env.health_events:
                fh.write(json.dumps(event.to_dict()) + "\n")
        report.extra["events_out"] = args.out
    if args.trace_out is not None:
        _write_chrome_trace(env, args.trace_out, report,
                            health_events=env.health_events)

    if args.json:
        json.dump(report.to_dict(), out, indent=2)
        print(file=out)
        return
    print(f"{args.app}: {args.pes} PEs, {args.objects} objects, "
          f"{args.latency:g} ms one-way WAN"
          + (f", loss {args.loss:g}" if args.loss > 0 else "")
          + f", {args.steps} steps", file=out)
    print(file=out)
    print(report.render(), file=out)
    print(file=out)
    print(env.sampler.render(), file=out)
    if args.out is not None:
        print(f"\nHealth events appended to {args.out} "
              f"({len(env.health_events)} records)", file=out)
    if args.trace_out is not None:
        print(f"Chrome trace (with health markers) written to "
              f"{args.trace_out}", file=out)


def cmd_netview(args, out) -> None:
    from repro.apps.stencil import StencilApp
    from repro.grid import artificial_latency_env
    from repro.obs.report import build_report, netview_section
    from repro.units import ms

    _validate_run(args)
    if args.streams < 0:
        raise SystemExit(f"--streams must be >= 0, got {args.streams}")
    if args.top < 1:
        raise SystemExit(f"--top must be >= 1, got {args.top}")
    env = artificial_latency_env(args.pes, ms(args.latency), trace=True,
                                 routing=args.routing,
                                 wan_streams=args.streams,
                                 profile=args.ledger_out is not None)
    t0 = env.now
    app = StencilApp(env, mesh=(args.mesh, args.mesh),
                     objects=args.objects, payload="modeled")
    result = app.run(args.steps)

    report = build_report(env.aggregator)
    report.net = netview_section(env.tracer, top=args.top)
    if args.ledger_out is not None:
        from repro.obs.critpath import CausalGraph, per_step_attribution

        graph = CausalGraph.from_tracer(env.tracer)
        boundaries = [t0] + [t0 + float(t) for t in result.step_times]
        steps = per_step_attribution(graph, boundaries)
        _emit_ledger(args, "netview", result, env, steps, args.ledger_out)
        report.extra["ledger"] = args.ledger_out
    report.extra["app"] = "stencil"
    report.extra["pes"] = args.pes
    report.extra["objects"] = args.objects
    report.extra["latency_ms"] = args.latency
    report.extra["steps"] = args.steps
    if args.routing is not None:
        report.extra["routing"] = args.routing
    if args.streams:
        report.extra["wan_streams"] = args.streams
    if args.trace_out is not None:
        _write_chrome_trace(env, args.trace_out, report)

    if args.json:
        json.dump(report.to_dict(), out, indent=2)
        print(file=out)
        return
    print(f"stencil: {args.pes} PEs, {args.objects} objects, "
          f"{args.latency:g} ms one-way WAN"
          + (f", routing {args.routing}" if args.routing else "")
          + (f", {args.streams} WAN streams" if args.streams else "")
          + f", {args.steps} steps", file=out)
    print(file=out)
    print(report.render(), file=out)
    if args.trace_out is not None:
        print(f"\nChrome trace (per-link network lanes) written to "
              f"{args.trace_out}", file=out)


def cmd_objview(args, out) -> None:
    from repro.grid import artificial_latency_env
    from repro.obs.critpath import (
        CausalGraph,
        per_object_blame,
        per_step_attribution,
        render_blame,
    )
    from repro.obs.objview import ObjectView, recommend_decomposition
    from repro.obs.report import build_report, objview_section
    from repro.units import ms

    _validate_run(args)
    if args.top < 1:
        raise SystemExit(f"--top must be >= 1, got {args.top}")
    env = artificial_latency_env(args.pes, ms(args.latency), trace=True,
                                 profile=args.ledger_out is not None)
    t0 = env.now
    if args.app == "stencil":
        from repro.apps.stencil import StencilApp
        app = StencilApp(env, mesh=(args.mesh, args.mesh),
                         objects=args.objects, payload="modeled")
        result = app.run(args.steps)
    else:
        from repro.apps.leanmd import LeanMDApp
        app = LeanMDApp(env, cells=(4, 4, 4), atoms_per_cell=16,
                        payload="modeled")
        result = app.run(args.steps)

    graph = CausalGraph.from_tracer(env.tracer)
    boundaries = [t0] + [t0 + float(t) for t in result.step_times]
    steps = per_step_attribution(graph, boundaries)
    blame = per_object_blame(
        [seg for att in steps for seg in att.segments])
    view = ObjectView.from_source(env.tracer)
    advice = recommend_decomposition(
        view, ms(args.latency),
        overhead_s=env.runtime.config.scheduler_overhead,
        num_pes=args.pes, steps=args.steps, blame=blame)

    report = build_report(env.aggregator)
    report.objects = objview_section(view, top=args.top, blame=blame,
                                     advice=advice)
    report.extra["app"] = args.app
    report.extra["pes"] = args.pes
    report.extra["latency_ms"] = args.latency
    report.extra["steps"] = args.steps
    if args.trace_out is not None:
        _write_chrome_trace(env, args.trace_out, report)
    if args.ledger_out is not None:
        _emit_ledger(args, "objview", result, env, steps, args.ledger_out,
                     objects_blame=blame)
        report.extra["ledger"] = args.ledger_out

    if args.json:
        json.dump(report.to_dict(), out, indent=2)
        print(file=out)
        return
    print(f"{args.app}: {args.pes} PEs, {args.objects} objects, "
          f"{args.latency:g} ms one-way WAN, {args.steps} steps",
          file=out)
    print(file=out)
    print(view.render(top=args.top), file=out)
    print(file=out)
    print(render_blame(blame, top=args.top), file=out)
    print(file=out)
    rec = advice.recommended_objects
    print("advisor: direction=" + advice.direction
          + (f", recommended objects={rec}" if rec is not None else ""),
          file=out)
    for s in advice.suggestions[:args.top]:
        print(f"  [{s.action.upper():7s}] {s.obj}: {s.reason} "
              f"(saves ~{s.predicted_savings_s * 1e3:.3f} ms)", file=out)
    if not advice.suggestions:
        print("  no per-object findings: the decomposition looks healthy",
              file=out)
    if args.trace_out is not None:
        print(f"\nChrome trace (with per-object lanes) written to "
              f"{args.trace_out}", file=out)
    if args.ledger_out is not None:
        print(f"Ledger record appended to {args.ledger_out}", file=out)


def cmd_sweep(args, out) -> None:
    from repro.bench.cache import DEFAULT_CACHE_DIR, RunCache
    from repro.bench.executor import SweepStats, default_jobs, run_sweep

    steps_default = {"fig3": 10, "fig3c": 8, "table1": 10, "fig4": 8,
                     "table2": 8}
    steps = args.steps if args.steps is not None \
        else steps_default[args.target]

    if args.target == "fig3c":
        latencies = (tuple(args.latencies) if args.latencies
                     else FIG3_LATENCIES_MS)
        specs = specs_fig3_collectives(latencies_ms=latencies, steps=steps)
    elif args.target == "fig3":
        panels = args.panels if args.panels else list(PE_COUNTS)
        for p in panels:
            if p not in FIG3_PANEL_OBJECTS:
                raise SystemExit(f"no Figure-3 panel for {p} PEs; valid: "
                                 f"{sorted(FIG3_PANEL_OBJECTS)}")
        latencies = (tuple(args.latencies) if args.latencies
                     else FIG3_LATENCIES_MS)
        specs = specs_fig3(panels=panels, latencies_ms=latencies,
                           steps=steps)
    elif args.target == "fig4":
        pes = tuple(args.pes) if args.pes else PE_COUNTS
        latencies = (tuple(args.latencies) if args.latencies
                     else FIG4_LATENCIES_MS)
        specs = specs_fig4(pe_counts=pes, latencies_ms=latencies,
                           steps=steps)
    elif args.target == "table1":
        rows = _parse_rows(args.rows) if args.rows else TABLE1_ROWS
        for pes_objs in rows:
            if pes_objs not in TABLE1_ROWS:
                raise SystemExit(f"{pes_objs} is not a Table-1 row; "
                                 f"valid: {TABLE1_ROWS}")
        specs = specs_table1(rows=rows, steps=steps)
    else:
        pes = tuple(args.pes) if args.pes else PE_COUNTS
        specs = specs_table2(pe_counts=pes, steps=steps)

    cache = None
    if not args.no_cache:
        cache = RunCache(args.cache_dir if args.cache_dir
                         else DEFAULT_CACHE_DIR)
    jobs = args.jobs if args.jobs is not None else default_jobs()
    if jobs < 1:
        raise SystemExit(f"--jobs must be >= 1, got {jobs}")
    progress = None if args.quiet else \
        (lambda line: print(line, file=sys.stderr, flush=True))
    stats = SweepStats()
    points = run_sweep(specs, jobs=jobs, cache=cache, progress=progress,
                       stats=stats)

    failed = [p for p in points if "error" in p.extra]
    if args.target == "fig3c":
        for app in ("collectives", "collectives-ampi"):
            print(render_fig3_collectives(points, app), file=out)
            print(file=out)
    elif args.target == "fig3":
        for p in panels:
            print(render_fig3_panel(points, p), file=out)
            print(file=out)
    elif args.target == "fig4":
        print(render_fig4(points), file=out)
    elif args.target == "table1":
        print(render_table1(points), file=out)
    else:
        print(render_table2(points), file=out)

    # Summary goes to stderr: stdout carries only the rendered artefact,
    # which is bit-identical for any worker count (test-enforced).
    print(f"sweep {args.target}: {stats.total} configs, "
          f"{stats.cache_hits} cached, {stats.executed} run "
          f"({stats.errors} failed) with {stats.jobs} worker(s) in "
          f"{stats.wall_s:.1f} s", file=sys.stderr)
    if args.stats_out:
        with open(args.stats_out, "w") as fh:
            json.dump(stats.to_dict(), fh, indent=1)
            fh.write("\n")
    if failed:
        for p in failed:
            print(f"FAILED {p.experiment} {p.app} pes={p.pes} "
                  f"objects={p.objects} @ {p.latency_ms:g}ms: "
                  f"{p.extra['error']}", file=out)
        raise SystemExit(1)


def cmd_bench_diff(args, out) -> None:
    from repro.bench import trajectory

    path = args.path if args.path else trajectory.DEFAULT_PATH
    records = trajectory.load_records(path)
    if not records:
        raise SystemExit(f"no trajectory records in {path}")
    if (args.baseline is None) != (args.candidate is None):
        raise SystemExit("--baseline and --candidate go together")
    if args.baseline is not None:
        try:
            pair = (records[args.baseline], records[args.candidate])
        except IndexError:
            raise SystemExit(
                f"record index out of range (have {len(records)})")
    else:
        pair = trajectory.latest_pair(records, digest=args.digest)
        if pair is None:
            what = (f"digest {args.digest}" if args.digest
                    else "any shared digest")
            raise SystemExit(
                f"{path}: no two records with {what} to compare")
    threshold = (args.threshold if args.threshold is not None
                 else trajectory.REGRESSION_THRESHOLD)
    cmp = trajectory.compare(pair[0], pair[1], threshold=threshold)
    # v2 ledger records carry the full critpath decomposition, so the
    # headline ratio can be *explained*: delegate to repro.obs.diff for
    # the per-component breakdown (what `repro compare` prints).
    diffed = None
    if pair[0].critpath and pair[1].critpath:
        from repro.obs.diff import compare_records

        diffed = compare_records(pair[0], pair[1])
    if args.json:
        doc = cmp.to_dict()
        if diffed is not None:
            doc["critpath_diff"] = diffed.to_dict()
        json.dump(doc, out, indent=2)
        print(file=out)
    else:
        print(cmp.render(), file=out)
        if diffed is not None:
            print(file=out)
            print(diffed.render_components(), file=out)
    if cmp.regressed:
        raise SystemExit(1)


def _resolve_compare_record(spec: str, records, path: str):
    """A compare operand: an index into *records* or a record file."""
    from repro.obs.ledger import records_from_file

    try:
        index = int(spec)
    except ValueError:
        try:
            loaded = records_from_file(spec)
        except OSError as exc:
            raise SystemExit(f"{spec!r}: not an integer index or a "
                             f"readable record file ({exc})")
        if len(loaded) != 1:
            raise SystemExit(f"{spec}: holds {len(loaded)} records; pass "
                             f"it as --path and select by index instead")
        return loaded[0]
    if records is None:
        raise SystemExit(f"no trajectory file at {path} to index into")
    try:
        return records[index]
    except IndexError:
        raise SystemExit(f"record index {index} out of range "
                         f"(have {len(records)} in {path})")


def cmd_compare(args, out) -> None:
    from repro.bench import trajectory
    from repro.obs.diff import (
        DEFAULT_THRESHOLD,
        compare_records,
        write_compare_trace,
    )

    path = args.path if args.path else trajectory.DEFAULT_PATH
    needs_index = any(_is_int(s) for s in (args.baseline, args.candidate))
    records = trajectory.load_records(path) if needs_index else None
    if needs_index and not records:
        raise SystemExit(f"no trajectory records in {path}")
    baseline = _resolve_compare_record(args.baseline, records, path)
    candidate = _resolve_compare_record(args.candidate, records, path)
    threshold = (args.threshold if args.threshold is not None
                 else DEFAULT_THRESHOLD)
    try:
        comparison = compare_records(baseline, candidate,
                                     threshold=threshold)
    except ValueError as exc:
        raise SystemExit(str(exc))
    if args.trace_out is not None:
        write_compare_trace(comparison, args.trace_out)
    if args.json:
        json.dump(comparison.to_dict(), out, indent=2)
        print(file=out)
    else:
        print(comparison.render(), file=out)
        if args.trace_out is not None:
            print(f"\nSide-by-side Chrome trace written to "
                  f"{args.trace_out}", file=out)
    if comparison.verdict == "regressed":
        raise SystemExit(1)


def _is_int(spec: str) -> bool:
    try:
        int(spec)
    except ValueError:
        return False
    return True


COMMANDS = {
    "table1": cmd_table1,
    "table2": cmd_table2,
    "fig3": cmd_fig3,
    "fig4": cmd_fig4,
    "demo": cmd_demo,
    "trace": cmd_trace,
    "critpath": cmd_critpath,
    "health": cmd_health,
    "netview": cmd_netview,
    "objview": cmd_objview,
    "sweep": cmd_sweep,
    "bench-diff": cmd_bench_diff,
    "compare": cmd_compare,
}


def main(argv: Optional[List[str]] = None, out=None) -> int:
    args = build_parser().parse_args(argv)
    COMMANDS[args.command](args, out if out is not None else sys.stdout)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
