"""repro — reproduction of Koenig & Kalé, *Using Message-Driven Objects
to Mask Latency in Grid Computing Applications* (IPPS 2005).

The package provides:

* :mod:`repro.core` — a Charm++-style message-driven object runtime
  (chares, chare arrays, async entry methods, reductions, multicasts,
  migration, measurement-based load balancing);
* :mod:`repro.ampi` — an Adaptive-MPI layer (MPI programs as migratable
  coroutine ranks on top of the runtime);
* :mod:`repro.network` — a VMI-style layered messaging stack with the
  paper's artificial-latency delay device;
* :mod:`repro.sim` — the deterministic discrete-event substrate;
* :mod:`repro.grid` — the paper's two experimental environments;
* :mod:`repro.apps` — the five-point stencil and LeanMD applications;
* :mod:`repro.bench` — harness, sweeps and report rendering for every
  table and figure in the paper.

Quickstart
----------
>>> from repro.grid import artificial_latency_env
>>> from repro.apps.stencil import StencilApp
>>> from repro.units import ms
>>> env = artificial_latency_env(num_pes=8, latency=ms(4))
>>> app = StencilApp(env, mesh=(256, 256), objects=16)
>>> result = app.run(steps=20)
>>> result.time_per_step_ms  # doctest: +SKIP
"""

from repro._version import __version__
from repro.core import Chare, Runtime, RuntimeConfig, entry
from repro.grid import (
    GridEnvironment,
    artificial_latency_env,
    single_cluster_env,
    teragrid_env,
)

__all__ = [
    "__version__",
    "Chare",
    "entry",
    "Runtime",
    "RuntimeConfig",
    "GridEnvironment",
    "artificial_latency_env",
    "teragrid_env",
    "single_cluster_env",
]
