#!/usr/bin/env python
"""An unmodified MPI program made latency-tolerant by AMPI.

The stencil below is written in plain MPI style (irecv/isend/waitall —
see ``repro.apps.stencil.ampi_driver`` for the rank program).  Nothing
in it knows about clusters or latency.  Running it with more ranks than
processors lets the message-driven scheduler overlap the wide-area
waits of some ranks with the compute of others — AMPI's promise from
paper §2.1.

Run:  python examples/ampi_stencil.py
"""

from repro.apps.stencil import AmpiStencilApp
from repro.grid import artificial_latency_env
from repro.units import ms


def run(ranks: int, latency_ms: float) -> float:
    env = artificial_latency_env(4, ms(latency_ms))
    app = AmpiStencilApp(env, mesh=(1024, 1024), ranks=ranks,
                         payload="modeled")
    return app.run(steps=10).time_per_step_ms


def main() -> None:
    print("AMPI stencil, 4 PEs split across two clusters")
    print(f"{'latency':>10} | {'4 ranks (1/PE)':>16} | "
          f"{'64 ranks (16/PE)':>17}")
    print("-" * 50)
    for latency in (0.0, 4.0, 8.0):
        print(f"{latency:>8.1f}ms | {run(4, latency):>13.2f} ms |"
              f" {run(64, latency):>14.2f} ms")
    print()
    print("Same MPI source, same semantics -- over-decomposition alone")
    print("recovers the latency the 1-rank-per-PE run exposes.")

    # And the numerics stay exact: compare against the sequential kernel.
    import numpy as np

    from repro.apps.stencil import make_initial_mesh, run_reference

    env = artificial_latency_env(4, ms(4))
    app = AmpiStencilApp(env, mesh=(48, 48), ranks=16, payload="real")
    res = app.run(steps=8)
    ref = run_reference(make_initial_mesh(48, 48, 0), 8)
    assert np.isclose(res.checksum, float(ref.sum()))
    print("checksum vs sequential reference: exact")


if __name__ == "__main__":
    main()
