#!/usr/bin/env python
"""Export a Chrome trace of the Figure-2 latency-masking scenario.

Runs the same three-processor timeline as ``timeline_fig2.py`` — object
B fires a request across an 8 ms WAN and keeps busy with neighbour A
until C's reply lands — but instead of an ASCII timeline it writes the
recorded trace out as:

* a Chrome trace-event JSON file (open in chrome://tracing or
  https://ui.perfetto.dev): entry executions as complete slices per PE,
  WAN crossings as async arrows, drops/retransmits as instants;
* a JSON-lines event log, one structured record per exec interval and
  message event, for ad-hoc analysis with jq / pandas;

and prints the latency-masking report (utilization, WAN in-flight time,
masked fraction) computed from the same run.

Run:  python examples/trace_export_demo.py [--out fig2.trace.json]
"""

import argparse

from repro.core import Chare, entry
from repro.grid import artificial_latency_env
from repro.obs.export import (
    export_chrome_trace,
    validate_chrome_trace,
    write_event_log,
)
from repro.obs.report import build_report
from repro.units import ms


class ObjectB(Chare):
    """Lives on PE 0 (cluster 1): the latency-masking protagonist."""

    def __init__(self, a=None, c=None):
        super().__init__()
        self.a = a
        self.c = c

    @entry
    def begin(self):
        self.c.request()       # crosses the WAN: 8 ms each way
        self.a.ping(0)         # meanwhile: local work with A
        self.charge(1e-3)

    @entry
    def pong(self, i):
        self.charge(1e-3)
        if i < 5:
            self.a.ping(i + 1)

    @entry
    def c_reply(self):
        self.charge(1e-3)


class ObjectA(Chare):
    """Lives on PE 1, same cluster as B."""

    def __init__(self, holder):
        super().__init__()
        self.holder = holder

    @entry
    def ping(self, i):
        self.charge(1e-3)
        self.holder["b"].pong(i)


class ObjectC(Chare):
    """Lives on PE 2: the second cluster, behind the delay device."""

    def __init__(self, holder):
        super().__init__()
        self.holder = holder

    @entry
    def request(self):
        self.charge(2e-3)
        self.holder["b"].c_reply()


def run_scenario():
    """Build and run the Figure-2 timeline; returns the environment."""
    env = artificial_latency_env(4, ms(8), trace=True)
    rts = env.runtime
    holder = {}
    a = rts.create_chare(ObjectA, pe=1, args=(holder,))
    c = rts.create_chare(ObjectC, pe=2, args=(holder,))
    b = rts.create_chare(ObjectB, pe=0, args=(a, c))
    holder["b"] = b
    b.begin()
    env.run()
    return env


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="fig2.trace.json",
                        help="Chrome trace-event output path")
    parser.add_argument("--events-out", default="fig2.events.jsonl",
                        help="JSON-lines event log output path")
    args = parser.parse_args(argv)

    env = run_scenario()
    doc = export_chrome_trace(env.tracer, args.out)
    validate_chrome_trace(doc)
    lines = write_event_log(env.tracer, args.events_out)

    print(build_report(env.aggregator).render())
    print()
    print(f"Chrome trace: {args.out} ({len(doc['traceEvents'])} events) "
          "-- open in chrome://tracing or https://ui.perfetto.dev")
    print(f"Event log:    {args.events_out} ({lines} records)")


if __name__ == "__main__":
    main()
