#!/usr/bin/env python
"""The §6 Grid load balancer in action.

Measures a deliberately skewed stencil placement (all wide-area-talking
blocks piled on one processor per cluster), lets GridCommLB plan from
the runtime's measured load database, and re-runs with the planned
placement — demonstrating both the speedup and the balancer's defining
constraint: chares never migrate across the cluster boundary.

Run:  python examples/gridlb_demo.py
"""

from repro.apps.stencil import BlockDecomposition, StencilApp
from repro.core.loadbalance import GridCommLB
from repro.core.mapping import ExplicitMapping, grid2d_split_mapping
from repro.grid import artificial_latency_env
from repro.units import ms

PES, OBJECTS, MESH = 8, 64, (1024, 1024)


def run(mapping_table):
    env = artificial_latency_env(PES, ms(2))
    app = StencilApp(env, mesh=MESH, objects=OBJECTS, payload="modeled",
                     mapping=ExplicitMapping(mapping_table))
    return env, app.run(steps=10)


def main() -> None:
    topo = artificial_latency_env(PES, ms(2)).topology
    decomp = BlockDecomposition.regular(MESH, OBJECTS)
    table = grid2d_split_mapping(decomp.brows, decomp.bcols, topo).assign(
        decomp.indices(), topo)
    # Skew: pile each cluster's seam column onto its first PE.
    for (bi, bj) in decomp.indices():
        if bj == decomp.bcols // 2 - 1:
            table[(bi, bj)] = topo.cluster_pes(0)[0]
        elif bj == decomp.bcols // 2:
            table[(bi, bj)] = topo.cluster_pes(1)[0]

    env, skewed = run(table)
    print(f"skewed placement : {skewed.time_per_step_ms:7.2f} ms/step")

    plan = GridCommLB().plan(env.runtime.lb_db, env.topology,
                             env.runtime.current_mapping())
    before = env.runtime.current_mapping()
    crossings = sum(
        1 for cid, pe in plan.items()
        if env.topology.cluster_of(pe) != env.topology.cluster_of(
            before[cid]))
    coll = max(cid.collection for cid in plan)
    balanced_table = {cid.index: pe for cid, pe in plan.items()
                      if cid.collection == coll}
    _env2, balanced = run(balanced_table)
    print(f"GridCommLB plan  : {balanced.time_per_step_ms:7.2f} ms/step  "
          f"({skewed.time_per_step / balanced.time_per_step:.2f}x faster)")
    print(f"cross-cluster migrations in plan: {crossings} "
          "(the balancer's invariant: always 0)")


if __name__ == "__main__":
    main()
