#!/usr/bin/env python
"""Quickstart: message-driven objects masking Grid latency.

Builds the paper's simulated Grid environment (two clusters joined by an
artificial-latency delay device), runs the five-point stencil at two
degrees of virtualization, and shows the headline effect: with enough
objects per processor, multi-millisecond wide-area latency vanishes from
the per-step time.

Run:  python examples/quickstart.py
"""

from repro.apps.stencil import StencilApp
from repro.grid import artificial_latency_env
from repro.units import ms


def time_per_step(pes: int, objects: int, latency_ms: float) -> float:
    """One stencil run; returns steady-state ms/step."""
    env = artificial_latency_env(pes, ms(latency_ms))
    app = StencilApp(env, mesh=(1024, 1024), objects=objects,
                     payload="modeled")
    return app.run(steps=10).time_per_step_ms


def main() -> None:
    pes = 8
    print(f"Five-point stencil on {pes} PEs split across two clusters")
    print(f"{'latency':>10} | {'8 objects (1/PE)':>18} | "
          f"{'128 objects (16/PE)':>20}")
    print("-" * 56)
    for latency in (0.0, 2.0, 4.0, 8.0):
        low = time_per_step(pes, 8, latency)
        high = time_per_step(pes, 128, latency)
        print(f"{latency:>8.1f}ms | {low:>15.2f} ms | {high:>17.2f} ms")
    print()
    print("With one object per processor the injected latency lands")
    print("directly on the per-step time; with 16 objects per processor")
    print("the message-driven scheduler hides it behind other objects'")
    print("work -- the paper's central result, no application changes.")


if __name__ == "__main__":
    main()
