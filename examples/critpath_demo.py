#!/usr/bin/env python
"""Why does Figure 3 have a knee?  The critical path answers.

Runs the 8-PE stencil twice at 2 ms one-way WAN latency — once with 1
object per PE (no spare work), once with 16 per PE (the paper's
recipe) — and walks each run's causal critical path:

* at 1 object/PE the WAN shows up *on the path*: a large share of every
  step is wan_flight, and the step time tracks latency;
* at 16 objects/PE the path is almost pure compute: the same 2 ms of
  wire time is being hidden behind other objects' work, exactly the
  paper's thesis, but read off the DAG rather than inferred from
  end-to-end times.

Then the knee analyzer predicts the full time-vs-latency curve for the
virtualized run from its single trace: the knee is where the predicted
WAN share first becomes binding.

Run:  python examples/critpath_demo.py
"""

from repro.apps.stencil import StencilApp
from repro.grid import artificial_latency_env
from repro.obs.critpath import (
    CausalGraph,
    per_step_attribution,
    predict_knee,
    render_attribution,
    summarize_attribution,
)
from repro.units import ms

PES = 8
MESH = (1024, 1024)
LATENCY_MS = 2.0
STEPS = 8
GRID_MS = (0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0)


def traced_run(objects, latency_ms):
    env = artificial_latency_env(PES, ms(latency_ms), trace=True)
    t0 = env.now
    app = StencilApp(env, mesh=MESH, objects=objects, payload="modeled")
    result = app.run(STEPS)
    graph = CausalGraph.from_tracer(env.tracer)
    boundaries = [t0] + [t0 + float(t) for t in result.step_times]
    return graph, boundaries, result


def main():
    print(f"Five-point stencil, {PES} PEs over two clusters, "
          f"{LATENCY_MS:g} ms one-way WAN\n")

    for objects in (PES, 16 * PES):
        graph, boundaries, result = traced_run(objects, LATENCY_MS)
        steps = per_step_attribution(graph, boundaries)
        summary = summarize_attribution(steps, warmup=result.warmup)
        print(f"--- {objects} objects ({objects // PES}/PE): "
              f"{result.time_per_step * 1e3:.2f} ms/step")
        print(render_attribution(steps, warmup=result.warmup))
        print(f"WAN share of the critical path: "
              f"{summary['wan_flight_share']:.1%}\n")

    print("Knee prediction from ONE traced 0-ms run (16 objects/PE):")
    graph, boundaries, result = traced_run(16 * PES, 0.0)
    knee = predict_knee(graph, boundaries, 0.0,
                        [ms(x) for x in GRID_MS], warmup=result.warmup)
    for lat, t in zip(knee.grid_s, knee.predicted_step_s):
        marker = "  <- knee" if lat == knee.knee_s else ""
        print(f"  L = {lat * 1e3:4g} ms  ->  predicted "
              f"{t * 1e3:7.2f} ms/step{marker}")
    print(f"\nThe flat region ends where WAN edges join the critical "
          f"path: predicted knee {knee.knee_s * 1e3:g} ms.")


if __name__ == "__main__":
    main()
