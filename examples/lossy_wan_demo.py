#!/usr/bin/env python
"""Exactly-once delivery over a hostile WAN, end to end.

Runs the 5-point stencil with *real* numpy payloads across a two-cluster
grid whose wide-area link drops 5%, duplicates 2% and reorders 5% of
all cross-cluster messages, then checks the distributed answer
bit-for-bit against the sequential reference.  The ack/retransmit
transport (on by default in ``lossy_wan_env``) is what makes that
possible; the demo ends by switching it off to show both failure modes
the faults would otherwise cause.

Run:  python examples/lossy_wan_demo.py
"""

import numpy as np

from repro.apps.stencil.driver import StencilApp
from repro.apps.stencil.kernel import make_initial_mesh
from repro.apps.stencil.reference import run_reference
from repro.errors import ReproError
from repro.grid.presets import lossy_wan_env
from repro.units import ms

PES = 8
OBJECTS = 16
MESH = (96, 96)
STEPS = 8
LOSS, DUP, REORDER = 0.05, 0.02, 0.05


def run(reliable: bool, seed: int = 0):
    env = lossy_wan_env(PES, ms(2), loss=LOSS, duplication=DUP,
                        reordering=REORDER, seed=seed, reliable=reliable)
    app = StencilApp(env, mesh=MESH, objects=OBJECTS, payload="real",
                     gather_mesh=True)
    result = app.run(STEPS)
    return env, result


def main() -> None:
    print(f"Stencil {MESH} on {PES} PEs / {OBJECTS} objects, 2 ms WAN "
          f"with loss={LOSS:.0%} dup={DUP:.0%} reorder={REORDER:.0%}")
    print()

    env, result = run(reliable=True)
    reference = run_reference(make_initial_mesh(*MESH, seed=0), STEPS)
    exact = np.array_equal(result.final_mesh, reference)
    r = env.transport.rstats
    print(f"  with ReliableTransport: {result.time_per_step * 1e3:.3f} "
          f"ms/step, bit-identical to sequential reference: {exact}")
    print(f"    {r.transfers} WAN transfers, {r.retransmits} retransmits, "
          f"{r.dups_suppressed} duplicates suppressed, "
          f"{r.rtt_samples} RTT samples")
    assert exact

    print()
    print("  without it, the same faults are application-visible:")
    try:
        run(reliable=False)
        print("    (this seed got lucky -- rerun with another)")
    except ReproError as exc:
        print(f"    {type(exc).__name__}: {exc}")


if __name__ == "__main__":
    main()
