#!/usr/bin/env python
"""A miniature Figure 3 panel at the terminal.

Sweeps cross-cluster one-way latency for three degrees of
virtualization of the 2048x2048 stencil on 16 processors, and renders
the time-per-step curves the way the paper plots them.

Run:  python examples/stencil_latency_sweep.py
"""

from repro.bench.figures import knee_latency_ms, render_series
from repro.bench.records import Series
from repro.bench.harness import stencil_point


def main() -> None:
    pes = 16
    latencies = [0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0]
    series = []
    for objects in (16, 64, 256):
        s = Series(label=f"{objects} objects")
        for lat in latencies:
            p = stencil_point("example", pes, objects, lat, steps=10)
            s.append(lat, p.time_per_step_ms)
        series.append(s)

    print(render_series(
        series, title=f"Stencil 2048x2048 on {pes} PEs (two clusters)"))
    print()
    for s in series:
        knee = knee_latency_ms(s, tolerance=1.5)
        print(f"  {s.label:>12}: near-horizontal out to ~{knee:g} ms")
    print()
    print("Higher virtualization extends the flat region -- compare the")
    print("knee positions above with paper Figure 3(d).")


if __name__ == "__main__":
    main()
