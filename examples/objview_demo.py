#!/usr/bin/env python
"""The object view end to end: profiles, matrix, blame, advice.

Runs the paper's stencil *over-coarsely* — 16 objects on 8 PEs behind
a 16 ms WAN, a decomposition the masking condition says is too coarse
to hide that latency — then interrogates the run at object
granularity:

* the per-chare profile table (compute, grain quantiles, queue wait,
  WAN traffic) and the object x object communication matrix;
* per-object blame: each critical-path second charged to the chare
  that executed (or starved) it;
* the decomposition advisor's verdict: the virtualization degree the
  masking condition ``C*(1 - 1/v) >= L`` asks for, with ranked
  split/merge/migrate suggestions.

Optionally writes the Chrome trace (one lane per object) next to it.

Run:  python examples/objview_demo.py [--latency 16] [--objects 16]
"""

import argparse

from repro.apps.stencil import StencilApp
from repro.grid import artificial_latency_env
from repro.obs.export import export_chrome_trace, validate_chrome_trace
from repro.obs.objview import ObjectView, recommend_decomposition
from repro.units import ms


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--pes", type=int, default=8)
    parser.add_argument("--objects", type=int, default=16,
                        help="virtualization degree (16 = over-coarse "
                             "for the default latency)")
    parser.add_argument("--mesh", type=int, default=512,
                        help="stencil mesh edge (NxN)")
    parser.add_argument("--latency", type=float, default=16.0,
                        help="one-way WAN latency in ms")
    parser.add_argument("--steps", type=int, default=8)
    parser.add_argument("--trace-out", default=None,
                        help="also write a Chrome trace with one lane "
                             "per object here")
    args = parser.parse_args(argv)

    env = artificial_latency_env(args.pes, ms(args.latency),
                                 trace=args.trace_out is not None)
    app = StencilApp(env, mesh=(args.mesh, args.mesh),
                     objects=args.objects)
    app.run(args.steps)

    view = ObjectView.from_source(env.aggregator)
    print(view.render(top=5))

    advice = recommend_decomposition(
        env.aggregator, ms(args.latency),
        overhead_s=env.runtime.config.scheduler_overhead,
        num_pes=args.pes, steps=args.steps)
    print()
    print(f"advisor: direction={advice.direction}, "
          f"recommended degree ~{advice.recommended_objects} "
          f"(this run: {args.objects})")
    for s in advice.suggestions[:3]:
        print(f"  {s.action:<7} {s.obj}: {s.reason} "
              f"(predicted savings {s.predicted_savings_s * 1e3:.2f} ms)")

    if args.trace_out:
        doc = export_chrome_trace(env.tracer, args.trace_out)
        validate_chrome_trace(doc)
        print(f"\nChrome trace: {args.trace_out} "
              f"({len(doc['traceEvents'])} events) -- object lanes in "
              "chrome://tracing or https://ui.perfetto.dev")


if __name__ == "__main__":
    main()
