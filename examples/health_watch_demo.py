#!/usr/bin/env python
"""Watch a grid run's health live: alerts, sparklines, and the governor.

Three short acts:

1. **Masked regime** — 8 PEs, 1 ms WAN, high virtualization.  The
   runtime hides the latency; the watchdog stays silent.
2. **Unmasked regime** — same grid at 32 ms.  Idle time blows past the
   ``1 - 1/1.5`` threshold and the ``unmasking`` alert fires online:
   the Figure-3 knee, observed live instead of post-hoc.  On a lossy
   WAN the ``retransmit-storm`` rule joins in.
3. **Governor** — a traced run given an absurd observability budget.
   The governor measures its own cost and walks the ladder
   full -> sampling -> counters, logging each downgrade.

Run:  python examples/health_watch_demo.py
"""

from repro.apps.stencil import run_stencil
from repro.grid import artificial_latency_env, lossy_wan_env
from repro.obs.timeseries import SamplingPolicy
from repro.units import ms

MESH = (512, 512)
OBJECTS = 64
STEPS = 8


def act(title: str) -> None:
    print()
    print(f"== {title} " + "=" * max(0, 66 - len(title)))


def show_events(env) -> None:
    events = env.health_events
    if not events:
        print("  (no health events -- the runtime is masking the latency)")
    for ev in events:
        print("  " + ev.render())


def main() -> None:
    print("Online health telemetry demo: 8 PEs across two clusters,")
    print(f"{MESH[0]}x{MESH[1]} stencil over {OBJECTS} objects.")

    act("Act 1: 1 ms WAN latency -- masked, watchdog silent")
    env = artificial_latency_env(8, ms(1.0), health=True)
    res = run_stencil(env, MESH, OBJECTS, steps=STEPS)
    print(f"  time/step {res.time_per_step_ms:.2f} ms")
    show_events(env)

    act("Act 2: 32 ms WAN latency -- unmasking alert fires online")
    env = artificial_latency_env(8, ms(32.0), health=True)
    res = run_stencil(env, MESH, OBJECTS, steps=STEPS)
    print(f"  time/step {res.time_per_step_ms:.2f} ms")
    show_events(env)
    print()
    print("  telemetry (fixed-memory ring buffers):")
    for line in env.sampler.render(width=44).splitlines():
        print("  " + line)

    act("Act 2b: same latency on a 30%-loss WAN -- storm alert too")
    env = lossy_wan_env(8, ms(8.0), loss=0.3, seed=7, health=True)
    res = run_stencil(env, (256, 256), OBJECTS, steps=4)
    print(f"  time/step {res.time_per_step_ms:.2f} ms")
    show_events(env)

    act("Act 3: tiny budget -- the governor downgrades observability")
    env = artificial_latency_env(
        4, ms(2.0), trace=True, health=True,
        sampling=SamplingPolicy(overhead_budget=1e-9))
    run_stencil(env, (256, 256), 16, steps=4)
    print(f"  final level: {env.governor.level!r} "
          f"(tracer enabled: {env.tracer.enabled}, "
          f"aggregator enabled: {env.aggregator.enabled})")
    show_events(env)
    print()
    print("Every run also exports obs.overhead_fraction in its metrics")
    print("snapshot, so the cost of watching is itself watched.")


if __name__ == "__main__":
    main()
