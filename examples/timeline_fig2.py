#!/usr/bin/env python
"""Figure 2, regenerated from a real trace.

The paper's Figure 2 sketches a hypothetical timeline: processor B
sends a request across the wide area to processor C and, instead of
idling, exchanges several short computations with processor A until C's
reply lands.  This example builds exactly that three-processor scenario
on the simulated grid, records a Projections-style trace, and renders
the timeline.

Run:  python examples/timeline_fig2.py
"""

from repro.core import Chare, entry
from repro.grid import artificial_latency_env
from repro.units import ms, to_ms


class ObjectB(Chare):
    """Lives on PE 0 (cluster 1): the latency-masking protagonist."""

    def __init__(self, a=None, c=None):
        super().__init__()
        self.a = a
        self.c = c
        self.reply_at = None

    @entry
    def begin(self):
        self.c.request()       # crosses the WAN: 8 ms each way
        self.a.ping(0)         # meanwhile: local work with A
        self.charge(1e-3)

    @entry
    def pong(self, i):
        self.charge(1e-3)
        if i < 5:
            self.a.ping(i + 1)

    @entry
    def c_reply(self):
        self.reply_at = self.now
        self.charge(1e-3)


class ObjectA(Chare):
    """Lives on PE 1, same cluster as B."""

    def __init__(self, holder):
        super().__init__()
        self.holder = holder

    @entry
    def ping(self, i):
        self.charge(1e-3)
        self.holder["b"].pong(i)


class ObjectC(Chare):
    """Lives on PE 2: the second cluster, behind the delay device."""

    def __init__(self, holder):
        super().__init__()
        self.holder = holder

    @entry
    def request(self):
        self.charge(2e-3)
        self.holder["b"].c_reply()


def main() -> None:
    env = artificial_latency_env(4, ms(8), trace=True)
    rts = env.runtime
    holder = {}
    a = rts.create_chare(ObjectA, pe=1, args=(holder,))
    c = rts.create_chare(ObjectC, pe=2, args=(holder,))
    b = rts.create_chare(ObjectB, pe=0, args=(a, c))
    holder["b"] = b
    b.begin()
    env.run()

    b_obj = rts.chare_object(b.chare_id)
    print("Figure 2 reproduced: '#' = executing, '.' = idle")
    print(env.tracer.render_timeline(width=64, pes=[0, 1, 2]))
    print()
    print(f"B -> C -> B round trip: {to_ms(b_obj.reply_at):.1f} ms "
          "(two 8 ms WAN crossings + C's 2 ms of work)")
    busy = env.tracer.busy_during(0, 0.0, b_obj.reply_at)
    print(f"B's PE busy during that window: {to_ms(busy):.1f} ms of "
          "A<->B exchanges -- the latency was masked, not waited out.")


if __name__ == "__main__":
    main()
