#!/usr/bin/env python
"""LeanMD co-allocated across a simulated NCSA/ANL TeraGrid pair.

Runs real molecular dynamics (cutoff Lennard-Jones + Coulomb, 3x3x3
cells here for speed; the paper's benchmark shape is 6x6x6 with 3,024
pair objects) on the jittered, contended TeraGrid WAN model, prints
per-step times and the energy ledger, then repeats on the paper's full
216-cell system with modeled payloads to show the Figure-4 scale.

Run:  python examples/leanmd_grid.py
"""

from repro.apps.leanmd import LeanMDApp, run_leanmd
from repro.grid import artificial_latency_env, teragrid_env
from repro.units import ms


def main() -> None:
    # -- real physics across the simulated TeraGrid ---------------------
    env = teragrid_env(8, seed=1)
    print(f"Environment: {env.describe()}")
    app = LeanMDApp(env, cells=(3, 3, 3), atoms_per_cell=8,
                    payload="real", seed=3)
    res = app.run(steps=10)
    print(f"27 cells / {27 + 27 * 26 // 2} pair objects, 216 atoms, "
          f"real forces")
    print(f"  time/step : {res.time_per_step * 1e3:8.2f} ms (virtual)")
    total = res.total_energy
    drift = abs(total[-1] - total[0]) / abs(total[0])
    print(f"  energy    : {total[0]:+.4f} -> {total[-1]:+.4f} "
          f"(drift {drift:.2%})")

    # -- the paper's benchmark shape at Figure-4 scale ---------------------
    print()
    print("Paper-scale LeanMD (216 cells, 3,024 pairs, modeled payload):")
    print(f"{'PEs':>5} {'1 ms':>10} {'32 ms':>10} {'256 ms':>10}")
    for pes in (8, 32):
        row = []
        for lat in (1.0, 32.0, 256.0):
            r = run_leanmd(artificial_latency_env(pes, ms(lat)), steps=5)
            row.append(f"{r.time_per_step:9.3f}s")
        print(f"{pes:>5} " + " ".join(row))
    print()
    print("As in Figure 4: tens of ms of latency disappear behind the")
    print(">90 pair objects per processor; only extreme latencies bite.")


if __name__ == "__main__":
    main()
