#!/usr/bin/env python
"""Faucets-style deadline brokering (paper §6, second scenario).

A user submits a stencil job with a deadline.  Neither site alone can
meet it — the broker rehearses the candidates on the simulator and
co-allocates across both clusters, which only works because the job's
virtualization masks the inter-cluster latency (the broker measures
that, it doesn't assume it).

Run:  python examples/deadline_broker.py
"""

from repro.grid import ClusterOffer, StencilJob, plan_allocation
from repro.units import ms


def main() -> None:
    offers = [ClusterOffer("ncsa", 8), ClusterOffer("anl", 8)]
    job = StencilJob(mesh=(2048, 2048), objects=256, steps=100,
                     deadline=1.5)

    print("Job: 2048x2048 stencil, 256 objects, 100 steps, "
          f"deadline {job.deadline:.1f} s")
    print("Offers: " + ", ".join(f"{o.name} ({o.free_pes} PEs free)"
                                 for o in offers))
    decision = plan_allocation(job, offers, wan_latency=ms(2))

    print("\nrehearsed candidates:")
    for alloc, t in decision.candidates:
        verdict = "meets deadline" if t <= job.deadline else "too slow"
        print(f"  {alloc.describe():28s} -> {t:6.2f} s   ({verdict})")

    assert decision.meets_deadline and decision.allocation.co_allocated
    print(f"\nbroker's choice: {decision.allocation.describe()} "
          f"(predicted {decision.predicted_time:.2f} s)")
    print("No single cluster sufficed; co-allocation met the deadline")
    print("because the 2 ms inter-site latency hides behind 16 objects")
    print("per processor -- the paper's thesis, applied to scheduling.")

    # The same job with almost no virtualization cannot be rescued:
    rigid = StencilJob(mesh=(2048, 2048), objects=16, steps=100,
                       deadline=1.5)
    d2 = plan_allocation(rigid, offers, wan_latency=ms(30))
    print(f"\nSame job at 16 objects and 30 ms WAN: "
          f"{'feasible' if d2.meets_deadline else 'infeasible'} "
          f"(best {d2.predicted_time:.2f} s) -- nothing to mask with.")


if __name__ == "__main__":
    main()
